// Extension: several copies of the bounded object.
//
// The paper's conclusions: "We believe that the results presented herein can
// be extended to ... systems with a number of copies of the strong object."
// This module composes r compare&swap-(k) registers into an election for
// ((k-1)!)^r designated processes: identity = r digits in base (k-1)!, one
// digit decided per register by an independent FirstValueTree stage that
// EVERY process runs (with its own digit as the proposed slot).  Stage j's
// decision is a digit, and the elected identity is the digit vector.
//
// Design note — why every process runs every stage: filtering stage-j
// participation by "my earlier digits won" would strand survivors whenever a
// whole winning-prefix group crashes (the stage could never start), killing
// wait-freedom.  Running all stages unfiltered keeps every stage live, at
// the price of the closed-model validity also used by the Burns multi-
// register composition: the elected digit vector is always a designated
// identity, but it may combine digits "owned" by different processes.  (The
// same caveat appears in [5]; the open-model composition is exactly the
// open problem the paper leaves for future work.)  Because all announcers
// of a stage slot write the same value — the slot index itself — plain
// MWMR registers suffice and the model stays c&s-(k) + read/write.
//
// Contrast for the capacity tables: r write-once k-valued RMW registers
// (Burns) elect (k-1)^r; r compare&swap-(k) with read/write registers elect
// ((k-1)!)^r — factorial amplification per copy.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/first_value_tree.h"
#include "registers/cas_register_k.h"
#include "registers/mwmr_register.h"
#include "runtime/crash_plan.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace bss::core {

/// One stage's shared memory: a compare&swap-(k) plus confirm/announce
/// boards.  Announce is MWMR because processes sharing a digit all claim the
/// same slot (writing the identical value, so plain registers suffice).
struct ComposedStageState {
  explicit ComposedStageState(int k, int stage);

  sim::CasRegisterK cas;
  std::vector<sim::MwmrRegister<int>> confirm;
  std::vector<sim::MwmrRegister<std::int64_t>> announce;
};

/// ElectionMemory over one stage.
class ComposedStageMemory {
 public:
  ComposedStageMemory(ComposedStageState& state, sim::Ctx& ctx)
      : state_(&state), ctx_(&ctx) {}

  int k() const { return state_->cas.k(); }
  int cas(int expect, int next) {
    return state_->cas.compare_and_swap(*ctx_, expect, next);
  }
  int read_confirm(int stage) const {
    return state_->confirm[static_cast<std::size_t>(stage)].read(*ctx_);
  }
  void write_confirm(int stage, int symbol) {
    state_->confirm[static_cast<std::size_t>(stage)].write(*ctx_, symbol);
  }
  std::int64_t read_announce(std::uint64_t slot) const {
    return state_->announce[static_cast<std::size_t>(slot)].read(*ctx_);
  }
  void write_announce(std::uint64_t slot, std::int64_t id) {
    state_->announce[static_cast<std::size_t>(slot)].write(*ctx_, id);
  }

 private:
  ComposedStageState* state_;
  sim::Ctx* ctx_;
};

static_assert(ElectionMemory<ComposedStageMemory>);

/// ((k-1)!)^copies.
std::uint64_t composed_capacity(int k, int copies);

struct ComposedElectionReport {
  int k = 0;
  int copies = 0;
  int processes = 0;
  sim::RunReport run;
  /// Elected identity (digit vector encoded in base (k-1)!) per pid; empty
  /// for crashed processes.
  std::vector<std::optional<std::uint64_t>> leaders;
  bool consistent = true;
  bool valid = true;  ///< leader < capacity (closed-model validity)
};

ComposedElectionReport run_composed_election(int k, int copies, int n,
                                             sim::Scheduler& scheduler,
                                             const sim::CrashPlan& crashes = {});

}  // namespace bss::core
