#include "core/composed_election.h"

#include "util/checked.h"

namespace bss::core {

ComposedStageState::ComposedStageState(int k, int stage)
    : cas("cas" + std::to_string(stage), k) {
  confirm.reserve(static_cast<std::size_t>(k - 1));
  for (int level = 0; level < k - 1; ++level) {
    confirm.emplace_back("confirm" + std::to_string(stage) + "[" +
                             std::to_string(level) + "]",
                         0);
  }
  const std::uint64_t slots = slot_count(k);
  announce.reserve(slots);
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    announce.emplace_back("announce" + std::to_string(stage) + "[" +
                              std::to_string(slot) + "]",
                          kNoId);
  }
}

std::uint64_t composed_capacity(int k, int copies) {
  expects(copies >= 1, "composition needs at least one register");
  const std::uint64_t base = slot_count(k);
  std::uint64_t capacity = 1;
  for (int copy = 0; copy < copies; ++copy) {
    expects(capacity <= ~std::uint64_t{0} / base, "capacity overflows uint64");
    capacity *= base;
  }
  return capacity;
}

ComposedElectionReport run_composed_election(int k, int copies, int n,
                                             sim::Scheduler& scheduler,
                                             const sim::CrashPlan& crashes) {
  const std::uint64_t capacity = composed_capacity(k, copies);
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= capacity,
          "process count exceeds ((k-1)!)^copies");

  std::vector<std::unique_ptr<ComposedStageState>> stages;
  stages.reserve(static_cast<std::size_t>(copies));
  for (int stage = 0; stage < copies; ++stage) {
    stages.push_back(std::make_unique<ComposedStageState>(k, stage));
  }

  ComposedElectionReport report;
  report.k = k;
  report.copies = copies;
  report.processes = n;
  report.leaders.resize(static_cast<std::size_t>(n));

  const std::uint64_t base = slot_count(k);
  sim::SimEnv env;
  for (int pid = 0; pid < n; ++pid) {
    env.add_process([&stages, &report, pid, copies, base](sim::Ctx& ctx) {
      // Decompose my identity into digits; elect one digit per register.
      std::uint64_t rest = static_cast<std::uint64_t>(pid);
      std::uint64_t leader = 0;
      std::uint64_t weight = 1;
      for (int stage = 0; stage < copies; ++stage) {
        const std::uint64_t digit = rest % base;
        rest /= base;
        ComposedStageMemory memory(*stages[static_cast<std::size_t>(stage)],
                                   ctx);
        // Propose the slot index itself: all claimants of a slot write the
        // same value, so the MWMR announce board is race-free by value.
        const ElectOutcome outcome =
            fvt_elect(memory, digit, checked_cast<std::int64_t>(digit));
        leader += static_cast<std::uint64_t>(outcome.leader) * weight;
        weight *= base;
      }
      report.leaders[static_cast<std::size_t>(pid)] = leader;
    });
  }
  report.run = env.run(scheduler, crashes);

  std::optional<std::uint64_t> agreed;
  for (int pid = 0; pid < n; ++pid) {
    if (report.run.outcomes[static_cast<std::size_t>(pid)] !=
        sim::ProcOutcome::kFinished) {
      report.leaders[static_cast<std::size_t>(pid)].reset();
      continue;
    }
    const auto& leader = report.leaders[static_cast<std::size_t>(pid)];
    if (leader.has_value()) {
      if (!agreed.has_value()) agreed = leader;
      if (*leader != *agreed) report.consistent = false;
      if (*leader >= composed_capacity(report.k, report.copies)) {
        report.valid = false;
      }
    }
  }
  return report;
}

}  // namespace bss::core
