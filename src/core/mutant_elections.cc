#include "core/mutant_elections.h"

namespace bss::core {

std::string to_string(OneShotMutant mutant) {
  switch (mutant) {
    case OneShotMutant::kNone:
      return "none";
    case OneShotMutant::kClaimAfterCas:
      return "claim-after-cas";
    case OneShotMutant::kSplitCas:
      return "split-cas";
  }
  return "?";
}

std::string to_string(AuditMutant mutant) {
  switch (mutant) {
    case AuditMutant::kHiddenScratch:
      return "hidden-scratch";
    case AuditMutant::kUnsyncedPeek:
      return "unsynced-peek";
    case AuditMutant::kStealthCounter:
      return "stealth-counter";
  }
  return "?";
}

MutantOneShotState::MutantOneShotState(int k)
    : cas("cas", k), weak("weak-cas", sim::CasRegisterK::kBottom) {
  claim.reserve(static_cast<std::size_t>(k));
  for (int symbol = 0; symbol < k; ++symbol) {
    claim.emplace_back("claim[" + std::to_string(symbol) + "]",
                       sim::SwmrRegister<std::int64_t>::kAnyWriter,
                       std::int64_t{-1});
  }
}

std::int64_t one_shot_elect_mutant(MutantOneShotState& state, sim::Ctx& ctx,
                                   int pid, std::int64_t id,
                                   OneShotMutant mutant) {
  const int k = state.cas.k();
  expects(pid >= 0 && pid < k - 1, "one-shot election capacity is k-1");
  const int my_symbol = pid + 1;
  auto& my_claim = state.claim[static_cast<std::size_t>(my_symbol)];

  if (mutant != OneShotMutant::kClaimAfterCas) my_claim.write(ctx, id);

  int prev;
  if (mutant == OneShotMutant::kSplitCas) {
    // BUG: check-then-act on a plain register.  Between the read and the
    // write another process can slip its own read in; both then see ⊥ and
    // both install, so two processes crown themselves.
    prev = state.weak.read(ctx);
    if (prev == sim::CasRegisterK::kBottom) state.weak.write(ctx, my_symbol);
  } else {
    prev = state.cas.compare_and_swap(ctx, sim::CasRegisterK::kBottom,
                                      my_symbol);
  }

  if (mutant == OneShotMutant::kClaimAfterCas) my_claim.write(ctx, id);

  const int winner_symbol =
      prev == sim::CasRegisterK::kBottom ? my_symbol : prev;
  const std::int64_t winner =
      state.claim[static_cast<std::size_t>(winner_symbol)].read(ctx);
  if (winner < 0) {
    // Only reachable under kClaimAfterCas: the winner raced us to the c&s
    // but has not written its claim yet.  The mutant's "recovery" is to
    // assume we won — the interleaving-dependent consistency bug.
    return id;
  }
  return winner;
}

}  // namespace bss::core
