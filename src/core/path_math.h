// Slot <-> permutation-path mathematics for the FirstValueTree election.
//
// The algorithm statically assigns each of the (k-1)! process slots a
// distinct *path*: a permutation of the non-initial symbols {1, …, k-1} of a
// compare&swap-(k).  A run installs symbols along one path (its "label" in
// Afek-Stupp terms), and the unique slot whose path equals the completed
// label owns the election.
//
// The mapping is the factorial number system (Lehmer codes): slot s's digit
// d_i selects the (d_i)-th smallest symbol not used in the first i stages.
// Two properties the algorithm leans on, both tested:
//   * paths are exactly the permutations of {1..k-1}: the map is a bijection;
//   * slots extending a given prefix are enumerable in ascending slot order,
//     so "smallest announced slot extending the current label" is computable
//     without scanning all (k-1)! slots.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bss::core {

/// Number of process slots supported by a compare&swap-(k): (k-1)!.
std::uint64_t slot_count(int k);

/// The full path (permutation of {1..k-1}) assigned to `slot`.
std::vector<int> slot_path(std::uint64_t slot, int k);

/// The slot owning a *complete* path (inverse of slot_path).
std::uint64_t path_owner(std::span<const int> full_path, int k);

/// True iff slot_path(slot, k) has `prefix` as a prefix.
bool slot_extends(std::uint64_t slot, std::span<const int> prefix, int k);

/// How many slots extend `prefix`: (k-1-|prefix|)!.
std::uint64_t extension_count(int k, int prefix_len);

/// The j-th smallest slot whose path extends `prefix`
/// (j in [0, extension_count)).  Ascending in j.
std::uint64_t nth_slot_extending(std::span<const int> prefix, std::uint64_t j,
                                 int k);

}  // namespace bss::core
