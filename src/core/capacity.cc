#include "core/capacity.h"

#include "util/checked.h"

namespace bss::core {

BigUint burns_bound(int k) {
  expects(k >= 2, "capacity bounds need k >= 2");
  return BigUint(static_cast<std::uint64_t>(k - 1));
}

BigUint algorithmic_lower(int k) {
  expects(k >= 2, "capacity bounds need k >= 2");
  return BigUint::factorial(k - 1);
}

BigUint paper_upper(int k) {
  expects(k >= 2, "capacity bounds need k >= 2");
  const auto base = static_cast<std::uint64_t>(k);
  const auto exponent = static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(k) + 3;
  return BigUint::pow(base, exponent);
}

BigUint conjecture(int k) {
  expects(k >= 2, "capacity bounds need k >= 2");
  return BigUint::factorial(k);
}

CapacityRow capacity_row(int k) {
  CapacityRow row;
  row.k = k;
  row.burns = burns_bound(k);
  row.lower = algorithmic_lower(k);
  row.conjectured = conjecture(k);
  row.upper = paper_upper(k);
  row.rw_amplification = row.lower.to_double() / row.burns.to_double();
  row.gap_digits = row.upper.decimal_digits() - row.lower.decimal_digits();
  return row;
}

}  // namespace bss::core
