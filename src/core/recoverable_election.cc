#include "core/recoverable_election.h"

#include <thread>

#include "core/concurrent_election.h"
#include "util/checked.h"
#include "util/rng.h"

namespace bss::core {

const char* to_string(RestartBehavior behavior) {
  switch (behavior) {
    case RestartBehavior::kRecover:
      return "recover";
    case RestartBehavior::kFreshClaim:
      return "fresh-claim";
  }
  return "?";
}

RecoverableElectionReport run_recoverable_sim_election(
    int k, int n, sim::Scheduler& scheduler, const sim::FaultPlan& faults,
    RestartBehavior behavior, SimElectionOptions options) {
  expects(n >= 1, "election needs at least one process");
  expects(static_cast<std::uint64_t>(n) <= slot_count(k),
          "more processes than slots: the algorithm's capacity is (k-1)!");

  SimElectionState state(k);
  std::vector<std::optional<ElectOutcome>> outcomes(
      static_cast<std::size_t>(n));

  if (options.slot_of_pid.empty()) {
    options.slot_of_pid.resize(static_cast<std::size_t>(n));
    for (int pid = 0; pid < n; ++pid) {
      options.slot_of_pid[static_cast<std::size_t>(pid)] =
          static_cast<std::uint64_t>(pid);
    }
  }
  expects(options.slot_of_pid.size() == static_cast<std::size_t>(n),
          "slot_of_pid must have one entry per process");

  sim::SimEnv env(options.sim);
  const std::uint64_t slots = slot_count(k);
  for (int pid = 0; pid < n; ++pid) {
    const std::uint64_t slot = options.slot_of_pid[static_cast<std::size_t>(pid)];
    const std::int64_t id = options.id_base + pid;
    const ElectPolicy policy = options.policy;
    // One program for every incarnation: recovery must work from shared
    // state plus the immutable inputs alone, so the restart hook IS the
    // body.  Only the seeded mutant inspects the incarnation counter.
    const auto program = [&state, &outcomes, slot, id, pid, behavior, slots,
                          policy](sim::Ctx& ctx) {
      std::uint64_t my_slot = slot;
      std::int64_t my_id = id;
      if (behavior == RestartBehavior::kFreshClaim && ctx.incarnation() > 0) {
        // BUG (seeded): the recovered process rejoins as a brand-new
        // participant instead of re-asserting its old claim.
        const auto incarnation =
            static_cast<std::uint64_t>(ctx.incarnation());
        my_slot = (slot + incarnation) % slots;
        my_id = id + kFreshClaimIdStride * ctx.incarnation();
      }
      SimElectionMemory memory(state, ctx);
      outcomes[static_cast<std::size_t>(pid)] =
          recoverable_elect(memory, my_slot, my_id, policy);
    };
    env.add_process(program, program);
  }

  RecoverableElectionReport report;
  report.election.k = k;
  report.election.processes = n;
  report.election.id_base = options.id_base;
  report.election.run = env.run(scheduler, faults);
  report.election.outcomes = std::move(outcomes);
  report.election.cas_history = state.cas.history();
  report.election.cas_total_accesses = state.cas.total_accesses();
  for (int pid = 0; pid < n; ++pid) {
    if (report.election.run.outcomes[static_cast<std::size_t>(pid)] !=
        sim::ProcOutcome::kFinished) {
      report.election.outcomes[static_cast<std::size_t>(pid)].reset();
    }
  }
  report.restarts_by_pid = report.election.run.restarts_by_pid;
  return report;
}

namespace {

/// Thrown by AbortingElectionMemory to model a hardware-thread restart: the
/// stack unwinds (all private election state dies) and the thread loop
/// re-enters recoverable_elect.
struct ThreadRestart {};

/// ElectionMemory adapter that counts shared operations and throws
/// ThreadRestart just before the `abort_before`-th one — the std::thread
/// analogue of FaultPlan::restart_before_op.
class AbortingElectionMemory {
 public:
  AbortingElectionMemory(AtomicElectionMemory& mem, std::uint64_t abort_before,
                         bool armed)
      : mem_(&mem), abort_before_(abort_before), armed_(armed) {}

  int k() const { return mem_->k(); }

  int cas(int expect, int next) {
    tick();
    return mem_->cas(expect, next);
  }
  int read_confirm(int stage) const {
    tick();
    return mem_->read_confirm(stage);
  }
  void write_confirm(int stage, int symbol) {
    tick();
    mem_->write_confirm(stage, symbol);
  }
  std::int64_t read_announce(std::uint64_t slot) const {
    tick();
    return mem_->read_announce(slot);
  }
  void write_announce(std::uint64_t slot, std::int64_t id) {
    tick();
    mem_->write_announce(slot, id);
  }

 private:
  void tick() const {
    if (armed_ && ops_++ >= abort_before_) throw ThreadRestart{};
  }

  AtomicElectionMemory* mem_;
  std::uint64_t abort_before_;
  bool armed_;
  mutable std::uint64_t ops_ = 0;
};

static_assert(ElectionMemory<AbortingElectionMemory>);

}  // namespace

RecoverableConcurrentReport run_recoverable_concurrent_election(
    int k, int n, std::uint64_t seed, double restart_p, int max_restarts) {
  expects(n >= 1, "election needs at least one thread");
  expects(static_cast<std::uint64_t>(n) <= slot_count(k),
          "more threads than slots: the algorithm's capacity is (k-1)!");
  expects(max_restarts >= 0, "max_restarts must be non-negative");

  // Pre-draw every thread's abort points so the storm is a deterministic
  // function of the seed (the interleaving still is not — that's the point
  // of the std::thread backend).
  bss::Rng rng(seed);
  const std::uint64_t max_op = static_cast<std::uint64_t>(16 * k);
  std::vector<std::vector<std::uint64_t>> abort_plan(
      static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    for (int r = 0; r < max_restarts; ++r) {
      if (rng.next_double() < restart_p) {
        abort_plan[static_cast<std::size_t>(t)].push_back(
            rng.next_below(max_op));
      }
    }
  }

  AtomicElectionMemory shared(k);
  RecoverableConcurrentReport report;
  report.outcomes.resize(static_cast<std::size_t>(n));
  report.restarts_by_thread.assign(static_cast<std::size_t>(n), 0);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&shared, &report, &abort_plan, t] {
      const auto& aborts = abort_plan[static_cast<std::size_t>(t)];
      std::size_t incarnation = 0;
      for (;;) {
        const bool armed = incarnation < aborts.size();
        AbortingElectionMemory memory(shared, armed ? aborts[incarnation] : 0,
                                      armed);
        try {
          report.outcomes[static_cast<std::size_t>(t)] = recoverable_elect(
              memory, static_cast<std::uint64_t>(t), 1000 + t);
          report.restarts_by_thread[static_cast<std::size_t>(t)] =
              checked_cast<int>(incarnation);
          return;
        } catch (const ThreadRestart&) {
          ++incarnation;  // all privates died with the unwound stack
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (int t = 0; t < n; ++t) {
    const std::int64_t elected =
        report.outcomes[static_cast<std::size_t>(t)].leader;
    if (report.leader == kNoId) report.leader = elected;
    if (elected != report.leader) report.consistent = false;
  }
  return report;
}

}  // namespace bss::core
