// OneShotElection — leader election among k-1 processes that touches the
// compare&swap-(k) exactly once per process.
//
// This is the Burns-Cruz-Loui-style baseline *with* announcement registers:
// process i claims the fresh symbol i+1 with a single c&s(⊥ → i+1); the
// winner is whoever's symbol landed, and every loser learns it from the
// failed operation's return value.  Capacity k-1 — exponentially below the
// (k-1)! of FirstValueTree, which is the measured content of the paper's
// conclusion that read/write registers *increase* the power of a bounded
// object (here they raise one c&s access per process to O(k) accesses and
// the capacity from k-1 to (k-1)!).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "registers/cas_register_k.h"
#include "registers/swmr_register.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace bss::core {

struct OneShotState {
  explicit OneShotState(int k);

  sim::CasRegisterK cas;
  /// claim[s] = identity of the process that owns symbol s (s in 1..k-1).
  std::vector<sim::SwmrRegister<std::int64_t>> claim;
};

/// Body for process `pid` (0 <= pid < k-1) proposing `id`; returns the
/// elected identity.
std::int64_t one_shot_elect(OneShotState& state, sim::Ctx& ctx, int pid,
                            std::int64_t id);

struct OneShotReport {
  sim::RunReport run;
  std::vector<std::optional<std::int64_t>> elected;  // by pid
  bool consistent = true;
};

/// Runs n <= k-1 processes; ids are 1000 + pid.
OneShotReport run_one_shot_election(int k, int n, sim::Scheduler& scheduler,
                                    const sim::CrashPlan& crashes = {});

}  // namespace bss::core
