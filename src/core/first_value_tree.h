// FirstValueTree — wait-free leader election for (k-1)! processes using ONE
// compare&swap-(k) plus unbounded read/write registers.
//
// This is the repository's reconstruction of the election algorithm the
// paper cites as [1] (Afek & Stupp, FOCS '93, "Synchronization power depends
// on the register size"): it uses the same resources, achieves the same
// capacity n_k >= (k-1)!, makes O(k) accesses to the compare&swap register
// per process, and classifies runs by the order of first occurrences of
// values in the register — exactly the "label" object on which the PODC '94
// lower-bound proof is built.  See DESIGN.md §4 for the provenance note.
//
// ------------------------------------------------------------------------
// Algorithm.
//
// Symbols are {⊥=0, 1, …, k-1}.  Each process owns a *slot* in [0, (k-1)!);
// slot s is statically assigned the path slot_path(s, k): a permutation of
// {1..k-1} (Lehmer coding).  A run *installs* symbols into the register along
// one path; installs only ever use fresh symbols, so the register's value
// sequence is a permutation prefix, and the completed permutation names the
// unique winning slot.
//
// Shared memory:
//   cas           — the compare&swap-(k);
//   announce[s]   — SWMR register, slot s's proposed identity (kNoId = none);
//   confirm[i]    — MWMR register, the stage-i installed symbol (0 = none).
//
// Each process loops:
//   1. read confirm[0..] to get the confirmed label π (longest non-0 prefix);
//   2. if |π| = k-1: decide announce[path_owner(π)];
//   3. pick a candidate slot extending π: its own if it still matches,
//      otherwise the smallest *announced* slot extending π (helping — this
//      is what keeps losers wait-free when winners crash);
//   4. b := candidate's stage-|π| symbol;  prev := cas(last(π) → b);
//   5. on success write confirm[|π|] = b; on failure, if prev is not in π it
//      is the unique unconfirmed install — re-read confirm and, if prev is
//      still missing, write confirm[|π2|] = prev (helper confirmation).
//
// ------------------------------------------------------------------------
// Why it is correct (the invariants, each exercised by tests/):
//
// * No symbol reuse.  Installs use symbols outside π; once installed a
//   symbol never leaves the history.  Hence the current register value
//   uniquely determines the entire history — there is no ABA.
//
// * At most one unconfirmed install.  A process attempts cas(a → b) only
//   with a = last symbol of a fully-confirmed prefix; if an unconfirmed
//   install x is pending, the register holds x ≠ a and every attempt fails
//   until someone confirms x.  Hence installs are gated on confirmation.
//
// * Helper confirmation is sound.  Suppose my cas returned x ∉ my π.  Then
//   x was installed, so (gating) every stage below stage(x) was confirmed
//   *before* x's install, which precedes my re-read — so my re-read sees a
//   confirmed prefix of length ≥ stage(x).  And no install ever followed an
//   unconfirmed x, so if my re-read still misses x, the confirmed prefix is
//   exactly stage(x) long: writing confirm[|π2|] = x attributes x to its
//   true stage.  All concurrent confirmers write the same (stage, symbol),
//   so plain MWMR registers suffice.
//
// * Stale success is impossible.  cas(a → b) succeeds only when the register
//   holds a; since symbols never repeat, a being current means my "stale"
//   prefix was in fact the complete confirmed history.
//
// * Validity.  A process pushes a branch only for a candidate slot whose
//   announce register it has read as non-empty; the final install therefore
//   completes the path of an announced slot, and path_owner(π) is announced.
//
// * Bounded wait-freedom.  Every loop iteration ends in a decision, a
//   successful install, a helper confirmation, or the observation of a
//   longer confirmed prefix; each of those can happen at most k-1 times, so
//   every process finishes within O(k) iterations of its *own* steps — even
//   if every other process has crashed.
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

#include "core/path_math.h"
#include "util/checked.h"

namespace bss::core {

/// announce[] value meaning "no process has proposed in this slot yet".
inline constexpr std::int64_t kNoId = -1;

/// Shared-memory interface the election runs against.  Two implementations:
/// SimElectionMemory (deterministic simulator, src/core/sim_election.h) and
/// AtomicElectionMemory (lock-free std::atomic, src/core/concurrent_election.h).
template <class M>
concept ElectionMemory = requires(M m, const M cm, int stage, int symbol,
                                  std::uint64_t slot, std::int64_t id) {
  { cm.k() } -> std::convertible_to<int>;
  { m.cas(symbol, symbol) } -> std::convertible_to<int>;
  { m.read_confirm(stage) } -> std::convertible_to<int>;
  { m.write_confirm(stage, symbol) };
  { m.read_announce(slot) } -> std::convertible_to<std::int64_t>;
  { m.write_announce(slot, id) };
};

struct ElectOutcome {
  std::int64_t leader = kNoId;
  std::vector<int> label;  ///< the complete history this process decided on
  int iterations = 0;      ///< main-loop iterations
  int cas_accesses = 0;    ///< accesses to the compare&swap register
  bool gave_up = false;    ///< only under ablated policies (see ElectPolicy)
};

/// Ablation knobs: the two helping mechanisms the wait-freedom argument
/// leans on, individually removable to measure what breaks (bench_ablation).
/// With both true (the default) the algorithm is the paper-grade one and
/// give-ups are impossible; with either false, a process that exhausts its
/// step bound returns gave_up instead of deciding (when allow_incomplete),
/// which the validator counts as a wait-freedom failure.
struct ElectPolicy {
  /// Push the smallest announced slot extending the label when our own slot
  /// fell out of the race.  Off: losers can only wait for winners — and
  /// crashed winners strand them.
  bool help_others = true;
  /// Confirm another process's install observed via a failed c&s.  Off: an
  /// installer crashing between its c&s and its confirm write wedges the
  /// whole system.
  bool helper_confirm = true;
  /// Give up (leader = kNoId) instead of raising an invariant error when the
  /// step bound is exceeded; only meaningful for ablated runs.
  bool allow_incomplete = false;
};

/// Upper bound on main-loop iterations implied by the wait-freedom argument;
/// exceeding it is an invariant violation (caught, not looped past).
constexpr int max_iterations(int k) { return 4 * k + 8; }

namespace detail {

/// Longest non-zero prefix of confirm[0..k-2].
template <ElectionMemory M>
std::vector<int> read_confirmed_label(M& mem) {
  const int k = mem.k();
  std::vector<int> label;
  for (int stage = 0; stage < k - 1; ++stage) {
    const int symbol = mem.read_confirm(stage);
    if (symbol == 0) break;
    label.push_back(symbol);
  }
  return label;
}

/// Smallest announced slot whose path extends `label`; kNoSlot if none
/// visible.  Enumerates only the (k-1-|label|)! extending slots.
inline constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

template <ElectionMemory M>
std::uint64_t smallest_announced_extension(M& mem,
                                           const std::vector<int>& label) {
  const int k = mem.k();
  const std::uint64_t extensions =
      extension_count(k, bss::checked_cast<int>(label.size()));
  for (std::uint64_t j = 0; j < extensions; ++j) {
    const std::uint64_t slot = nth_slot_extending(label, j, k);
    if (mem.read_announce(slot) != kNoId) return slot;
  }
  return kNoSlot;
}

}  // namespace detail

/// Runs the election for the process owning `my_slot`, proposing `my_id`
/// (must be >= 0).  Returns the elected identity; every correct process in
/// the same system returns the same one.
template <ElectionMemory M>
ElectOutcome fvt_elect(M& mem, std::uint64_t my_slot, std::int64_t my_id,
                       const ElectPolicy& policy = {}) {
  const int k = mem.k();
  expects(k >= 2, "fvt_elect requires k >= 2");
  expects(my_slot < slot_count(k), "slot out of range for this k");
  expects(my_id >= 0, "proposed identity must be non-negative");

  ElectOutcome outcome;
  mem.write_announce(my_slot, my_id);

  const std::vector<int> my_path = slot_path(my_slot, k);
  for (;;) {
    if (outcome.iterations >= max_iterations(k)) {
      if (policy.allow_incomplete) {
        outcome.gave_up = true;
        return outcome;
      }
      expects(false, "election exceeded its wait-freedom step bound");
    }
    ++outcome.iterations;

    std::vector<int> label = detail::read_confirmed_label(mem);
    const int depth = bss::checked_cast<int>(label.size());

    if (depth == k - 1) {
      // Complete permutation: the label names the winner.
      const std::uint64_t owner = path_owner(label, k);
      const std::int64_t winner = mem.read_announce(owner);
      expects(winner != kNoId, "elected slot was never announced (validity)");
      outcome.leader = winner;
      outcome.label = std::move(label);
      return outcome;
    }

    // Candidate slot whose path we push forward this round.
    std::uint64_t candidate;
    if (slot_extends(my_slot, label, k)) {
      candidate = my_slot;
    } else if (policy.help_others) {
      candidate = detail::smallest_announced_extension(mem, label);
      // Some announced slot always extends the label: the last install was
      // itself pushed along an announced slot's path (validity invariant).
      expects(candidate != detail::kNoSlot,
              "no announced slot extends the confirmed label");
    } else {
      // Ablated: losers push nothing and can only re-read.
      continue;
    }
    const int branch = slot_path(candidate, k)[static_cast<std::size_t>(depth)];
    const int expected =
        label.empty() ? 0 /* ⊥ */ : label.back();

    ++outcome.cas_accesses;
    const int prev = mem.cas(expected, branch);
    if (prev == expected) {
      // We installed `branch` at stage `depth`.
      mem.write_confirm(depth, branch);
      continue;
    }

    // Failure: `prev` was current.  If it is outside our (stale) label it is
    // either freshly confirmed by now or the unique unconfirmed install.
    bool in_label = prev == 0;
    for (const int symbol : label) in_label = in_label || symbol == prev;
    if (!in_label && policy.helper_confirm) {
      const std::vector<int> relabel = detail::read_confirmed_label(mem);
      bool confirmed = false;
      for (const int symbol : relabel) confirmed = confirmed || symbol == prev;
      if (!confirmed) {
        // Helper confirmation; see the invariant note in the file header.
        mem.write_confirm(bss::checked_cast<int>(relabel.size()), prev);
      }
    }
  }
}

}  // namespace bss::core
