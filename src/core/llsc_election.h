// Extension: the election on a k-valued load-link/store-conditional register.
//
// The paper names "compare&swap, or load-link-store-conditional" as the
// top-of-hierarchy objects and conjectures its results "can be extended to
// hold for arbitrary read-modify-write registers of size k".  This module is
// that extension for LL/SC: the same FirstValueTree algorithm, with the
// compare&swap-(k) replaced by a k-valued LL/SC register behind a thin
// adapter implementing c&s(a -> b):
//
//     v := LL();  if v != a: return v;          // failure, v is current
//     if SC(b):   return a;                      // success
//     retry                                      // an SC intervened
//
// The retry loop is bounded by the algorithm's no-reuse invariant: an SC
// interfering with ours changed the value, values never repeat within a run,
// so the next LL cannot read `a` again — at most TWO iterations ever happen
// on ideal LL/SC.  One *spurious* SC failure (FaultPlan::fail_sc) costs one
// extra round trip, and the no-reuse argument still cuts the chain after
// it, so the guard of 3 attempts tolerates exactly one spurious failure per
// c&s call; FaultPlan caps injection at one per process, which is stricter.
// Capacity, validity, consistency and the O(k) access bound all carry over;
// tests/test_election.cc exercises the adapter under the same schedulers and
// crash storms as the c&s version, and tests/test_faults.cc under spurious
// SC storms.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/first_value_tree.h"
#include "registers/ll_sc.h"
#include "registers/mwmr_register.h"
#include "registers/swmr_register.h"
#include "runtime/fault_plan.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace bss::core {

struct LlScElectionState {
  explicit LlScElectionState(int k);

  sim::LlScRegisterK llsc;
  std::vector<sim::MwmrRegister<int>> confirm;
  std::vector<sim::SwmrRegister<std::int64_t>> announce;
};

class LlScElectionMemory {
 public:
  LlScElectionMemory(LlScElectionState& state, sim::Ctx& ctx)
      : state_(&state), ctx_(&ctx) {}

  int k() const { return state_->llsc.k(); }

  int cas(int expect, int next) {
    // Bounded by the no-reuse invariant; the guard documents it.
    for (int attempt = 0; attempt < 3; ++attempt) {
      const int value = state_->llsc.load_link(*ctx_);
      if (value != expect) return value;
      if (state_->llsc.store_conditional(*ctx_, next)) return expect;
    }
    expects(false,
            "LL/SC c&s adapter retried past its bound: a value recurred");
    return -1;  // unreachable
  }

  int read_confirm(int stage) const {
    return state_->confirm[static_cast<std::size_t>(stage)].read(*ctx_);
  }
  void write_confirm(int stage, int symbol) {
    state_->confirm[static_cast<std::size_t>(stage)].write(*ctx_, symbol);
  }
  std::int64_t read_announce(std::uint64_t slot) const {
    return state_->announce[static_cast<std::size_t>(slot)].read(*ctx_);
  }
  void write_announce(std::uint64_t slot, std::int64_t id) {
    state_->announce[static_cast<std::size_t>(slot)].write(*ctx_, id);
  }

 private:
  LlScElectionState* state_;
  sim::Ctx* ctx_;
};

static_assert(ElectionMemory<LlScElectionMemory>);

struct LlScElectionReport {
  sim::RunReport run;
  std::vector<std::optional<ElectOutcome>> outcomes;
  bool consistent = true;
  bool valid = true;
};

/// Runs n <= (k-1)! processes electing through one k-valued LL/SC register.
/// `faults` may fail-stop processes and fail SCs spuriously (CrashPlan call
/// sites keep working through the implicit FaultPlan lift); restart events
/// are rejected — the bodies register no restart hook.
LlScElectionReport run_llsc_election(int k, int n, sim::Scheduler& scheduler,
                                     const sim::FaultPlan& faults = {});

}  // namespace bss::core
