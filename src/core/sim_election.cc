#include "core/sim_election.h"

#include "util/checked.h"

namespace bss::core {

SimElectionState::SimElectionState(int k) : cas("cas", k) {
  confirm.reserve(static_cast<std::size_t>(k - 1));
  for (int stage = 0; stage < k - 1; ++stage) {
    confirm.emplace_back("confirm[" + std::to_string(stage) + "]", 0);
  }
  const std::uint64_t slots = slot_count(k);
  announce.reserve(slots);
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    announce.emplace_back("announce[" + std::to_string(slot) + "]",
                          sim::SwmrRegister<std::int64_t>::kAnyWriter, kNoId);
  }
}

SimElectionReport run_sim_election(int k, int n, sim::Scheduler& scheduler,
                                   const sim::CrashPlan& crashes,
                                   SimElectionOptions options) {
  expects(n >= 1, "election needs at least one process");
  expects(static_cast<std::uint64_t>(n) <= slot_count(k),
          "more processes than slots: the algorithm's capacity is (k-1)!");

  SimElectionState state(k);
  std::vector<std::optional<ElectOutcome>> outcomes(
      static_cast<std::size_t>(n));

  if (options.slot_of_pid.empty()) {
    options.slot_of_pid.resize(static_cast<std::size_t>(n));
    for (int pid = 0; pid < n; ++pid) {
      options.slot_of_pid[static_cast<std::size_t>(pid)] =
          static_cast<std::uint64_t>(pid);
    }
  }
  expects(options.slot_of_pid.size() == static_cast<std::size_t>(n),
          "slot_of_pid must have one entry per process");

  sim::SimEnv env(options.sim);
  for (int pid = 0; pid < n; ++pid) {
    const std::uint64_t slot = options.slot_of_pid[static_cast<std::size_t>(pid)];
    const std::int64_t id = options.id_base + pid;
    const ElectPolicy policy = options.policy;
    env.add_process([&state, &outcomes, slot, id, pid, policy](sim::Ctx& ctx) {
      SimElectionMemory memory(state, ctx);
      outcomes[static_cast<std::size_t>(pid)] =
          fvt_elect(memory, slot, id, policy);
    });
  }

  SimElectionReport report;
  report.k = k;
  report.processes = n;
  report.id_base = options.id_base;
  report.run = env.run(scheduler, crashes);
  report.outcomes = std::move(outcomes);
  report.cas_history = state.cas.history();
  report.cas_total_accesses = state.cas.total_accesses();
  // A process that crashed after computing its outcome still reported one;
  // clear those so "crashed" and "decided" stay mutually exclusive.
  for (int pid = 0; pid < n; ++pid) {
    if (report.run.outcomes[static_cast<std::size_t>(pid)] !=
        sim::ProcOutcome::kFinished) {
      report.outcomes[static_cast<std::size_t>(pid)].reset();
    }
  }
  return report;
}

}  // namespace bss::core
