// Deliberately-buggy election variants ("mutants") for the schedule-space
// explorer (src/explore).
//
// Each mutant is a real concurrency bug: it is *correct on most schedules*
// and wrong only under a specific interleaving, so a scheduler that merely
// samples the schedule space can miss it forever.  The explorer's job is to
// refute every one of them with a minimized, replayable counterexample;
// tests/test_explore.cc asserts that it does.  None of these are reachable
// from the production election entry points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "registers/cas_register_k.h"
#include "registers/ll_sc.h"
#include "registers/mwmr_register.h"
#include "registers/swmr_register.h"
#include "runtime/sim_env.h"
#include "util/checked.h"

namespace bss::core {

enum class OneShotMutant {
  kNone,          ///< the correct algorithm (control)
  kClaimAfterCas, ///< claim register written AFTER racing: a loser can read
                  ///< the winner's claim before the winner wrote it and,
                  ///< seeing nothing, crowns itself
  kSplitCas,      ///< the c&s replaced by a read-then-write on a plain MWMR
                  ///< register: two processes can both observe ⊥ and both
                  ///< "win" (classic check-then-act race)
};

std::string to_string(OneShotMutant mutant);

/// Shared memory for the mutated one-shot election.  Carries both the real
/// compare&swap-(k) and the plain register the kSplitCas mutant races on, so
/// every mutant runs against the same state shape.
struct MutantOneShotState {
  explicit MutantOneShotState(int k);

  sim::CasRegisterK cas;
  sim::MwmrRegister<int> weak;  ///< kSplitCas's stand-in for the c&s
  std::vector<sim::SwmrRegister<std::int64_t>> claim;
};

/// One-shot election body with the selected bug injected.  With
/// OneShotMutant::kNone this is behaviourally identical to one_shot_elect.
std::int64_t one_shot_elect_mutant(MutantOneShotState& state, sim::Ctx& ctx,
                                   int pid, std::int64_t id,
                                   OneShotMutant mutant);

/// LL/SC c&s adapter that IGNORES store-conditional failure: the process
/// believes it installed its symbol although the register never changed.
/// Harmless while SCs never interleave; wrong exactly when another SC lands
/// between this process's LL and SC — an interleaving-dependent bug for the
/// FirstValueTree election (see explore::LlScSystem).
class ScBlindLlScMemory {
 public:
  ScBlindLlScMemory(sim::LlScRegisterK& llsc,
                    std::vector<sim::MwmrRegister<int>>& confirm,
                    std::vector<sim::SwmrRegister<std::int64_t>>& announce,
                    sim::Ctx& ctx)
      : llsc_(&llsc), confirm_(&confirm), announce_(&announce), ctx_(&ctx) {}

  int k() const { return llsc_->k(); }

  int cas(int expect, int next) {
    const int value = llsc_->load_link(*ctx_);
    if (value != expect) return value;
    (void)llsc_->store_conditional(*ctx_, next);  // BUG: result ignored
    return expect;
  }

  int read_confirm(int stage) const {
    return (*confirm_)[static_cast<std::size_t>(stage)].read(*ctx_);
  }
  void write_confirm(int stage, int symbol) {
    (*confirm_)[static_cast<std::size_t>(stage)].write(*ctx_, symbol);
  }
  std::int64_t read_announce(std::uint64_t slot) const {
    return (*announce_)[static_cast<std::size_t>(slot)].read(*ctx_);
  }
  void write_announce(std::uint64_t slot, std::int64_t id) {
    (*announce_)[static_cast<std::size_t>(slot)].write(*ctx_, id);
  }

 private:
  sim::LlScRegisterK* llsc_;
  std::vector<sim::MwmrRegister<int>>* confirm_;
  std::vector<sim::SwmrRegister<std::int64_t>>* announce_;
  sim::Ctx* ctx_;
};

}  // namespace bss::core
