// Deliberately-buggy election variants ("mutants") for the schedule-space
// explorer (src/explore).
//
// Each mutant is a real concurrency bug: it is *correct on most schedules*
// and wrong only under a specific interleaving, so a scheduler that merely
// samples the schedule space can miss it forever.  The explorer's job is to
// refute every one of them with a minimized, replayable counterexample;
// tests/test_explore.cc asserts that it does.  None of these are reachable
// from the production election entry points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "registers/cas_register_k.h"
#include "registers/ll_sc.h"
#include "registers/mwmr_register.h"
#include "registers/swmr_register.h"
#include "runtime/sim_env.h"
#include "util/checked.h"

namespace bss::core {

enum class OneShotMutant {
  kNone,          ///< the correct algorithm (control)
  kClaimAfterCas, ///< claim register written AFTER racing: a loser can read
                  ///< the winner's claim before the winner wrote it and,
                  ///< seeing nothing, crowns itself
  kSplitCas,      ///< the c&s replaced by a read-then-write on a plain MWMR
                  ///< register: two processes can both observe ⊥ and both
                  ///< "win" (classic check-then-act race)
};

std::string to_string(OneShotMutant mutant);

/// Shared memory for the mutated one-shot election.  Carries both the real
/// compare&swap-(k) and the plain register the kSplitCas mutant races on, so
/// every mutant runs against the same state shape.
struct MutantOneShotState {
  explicit MutantOneShotState(int k);

  sim::CasRegisterK cas;
  sim::MwmrRegister<int> weak;  ///< kSplitCas's stand-in for the c&s
  std::vector<sim::SwmrRegister<std::int64_t>> claim;
};

/// One-shot election body with the selected bug injected.  With
/// OneShotMutant::kNone this is behaviourally identical to one_shot_elect.
std::int64_t one_shot_elect_mutant(MutantOneShotState& state, sim::Ctx& ctx,
                                   int pid, std::int64_t id,
                                   OneShotMutant mutant);

// ---------------------------------------------------------- audit mutants
//
// Seeded soundness bugs for the access-ledger auditor (src/audit).  Unlike
// the schedule mutants above, these are not wrong on any *particular*
// interleaving — they lie to the exploration infrastructure itself
// (undeclared footprints, unsynchronized access, broken read/read
// commutation), the exact failure modes that silently unsound a sleep-set
// explorer.  tests/test_audit.cc asserts each is caught by its detector.

enum class AuditMutant {
  kHiddenScratch,   ///< read secretly writes a hidden scratch cell — an
                    ///< undeclared footprint (kUndeclaredTouch)
  kUnsyncedPeek,    ///< a process peeks shared state before its first sync
                    ///< — access outside any granted window (kUnsyncedAccess)
  kStealthCounter,  ///< a "read" that mutates hidden state, so reads no
                    ///< longer commute — ledger-clean, only the commutation
                    ///< cross-check exposes it
};

std::string to_string(AuditMutant mutant);

/// Register whose read declares the honest {name, "read"} footprint but ALSO
/// bumps a hidden scratch cell.  The token reports the scratch write
/// truthfully (the lie is in the *declaration*, not the ledger), so the
/// footprint conformance checker flags kUndeclaredTouch.  Under-declared
/// footprints are exactly what unsounds sleep-set POR: two "reads" of this
/// register do not commute, yet ops_commute says they do.
class HiddenScratchRegister {
 public:
  explicit HiddenScratchRegister(std::string name)
      : name_(std::move(name)), scratch_name_(name_ + ".scratch") {}

  std::int64_t read(sim::Ctx& ctx) {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    ctx.access_token().write(scratch_name_);  // BUG: undeclared footprint
    ++scratch_;
    ctx.note_result(value_);
    return value_;
  }

  void write(sim::Ctx& ctx, std::int64_t value) {
    ctx.sync({name_, "write", value, 0});
    ctx.access_token().write(name_);
    value_ = value;
  }

  const std::string& name() const { return name_; }
  std::int64_t peek() const { return value_; }
  std::int64_t scratch() const { return scratch_; }

 private:
  std::string name_;
  std::string scratch_name_;
  std::int64_t value_ = 0;
  std::int64_t scratch_ = 0;
};

/// Register that is ledger- AND footprint-clean — its token truthfully
/// reports a read of the declared object, nothing else — yet serves every
/// "read" a fresh ticket from a hidden counter.  Two reads of it do not
/// commute (swapping them swaps the tickets the processes saw), violating
/// the read/read half of ops_commute.  No per-access detector can see this;
/// the differential commutation cross-check catches it by replaying the
/// swapped schedule and comparing final states.
class StealthCounterRegister {
 public:
  explicit StealthCounterRegister(std::string name) : name_(std::move(name)) {}

  std::int64_t read(sim::Ctx& ctx) {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    const std::int64_t ticket = ++served_;  // BUG: a "read" that writes
    ctx.note_result(ticket);
    return ticket;
  }

  const std::string& name() const { return name_; }
  std::int64_t peek() const { return served_; }

 private:
  std::string name_;
  std::int64_t served_ = 0;
};

/// LL/SC c&s adapter that IGNORES store-conditional failure: the process
/// believes it installed its symbol although the register never changed.
/// Harmless while SCs never interleave; wrong exactly when another SC lands
/// between this process's LL and SC — an interleaving-dependent bug for the
/// FirstValueTree election (see explore::LlScSystem).
class ScBlindLlScMemory {
 public:
  ScBlindLlScMemory(sim::LlScRegisterK& llsc,
                    std::vector<sim::MwmrRegister<int>>& confirm,
                    std::vector<sim::SwmrRegister<std::int64_t>>& announce,
                    sim::Ctx& ctx)
      : llsc_(&llsc), confirm_(&confirm), announce_(&announce), ctx_(&ctx) {}

  int k() const { return llsc_->k(); }

  int cas(int expect, int next) {
    const int value = llsc_->load_link(*ctx_);
    if (value != expect) return value;
    (void)llsc_->store_conditional(*ctx_, next);  // BUG: result ignored
    return expect;
  }

  int read_confirm(int stage) const {
    return (*confirm_)[static_cast<std::size_t>(stage)].read(*ctx_);
  }
  void write_confirm(int stage, int symbol) {
    (*confirm_)[static_cast<std::size_t>(stage)].write(*ctx_, symbol);
  }
  std::int64_t read_announce(std::uint64_t slot) const {
    return (*announce_)[static_cast<std::size_t>(slot)].read(*ctx_);
  }
  void write_announce(std::uint64_t slot, std::int64_t id) {
    (*announce_)[static_cast<std::size_t>(slot)].write(*ctx_, id);
  }

 private:
  sim::LlScRegisterK* llsc_;
  std::vector<sim::MwmrRegister<int>>* confirm_;
  std::vector<sim::SwmrRegister<std::int64_t>>* announce_;
  sim::Ctx* ctx_;
};

}  // namespace bss::core
