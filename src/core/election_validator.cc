#include "core/election_validator.h"

#include <set>
#include <sstream>

#include "util/permutation.h"

namespace bss::core {

ElectionVerdict verify_election(const SimElectionReport& report) {
  ElectionVerdict verdict;
  std::ostringstream diagnosis;

  // --- (a) Consistency: distinct processes never elect distinct identities.
  std::int64_t elected = kNoId;
  verdict.consistent = true;
  for (int pid = 0; pid < report.processes; ++pid) {
    const auto& outcome = report.outcomes[static_cast<std::size_t>(pid)];
    if (!outcome.has_value()) continue;
    if (elected == kNoId) {
      elected = outcome->leader;
    } else if (outcome->leader != elected) {
      verdict.consistent = false;
      diagnosis << "p" << pid << " elected " << outcome->leader
                << " but an earlier process elected " << elected << "; ";
    }
  }

  // --- (c) Validity: the elected identity was proposed by some process.
  verdict.valid = true;
  if (elected != kNoId) {
    const std::int64_t pid = elected - report.id_base;
    if (pid < 0 || pid >= report.processes) {
      verdict.valid = false;
      diagnosis << "elected id " << elected << " was never proposed; ";
    }
  }

  // --- (b) Wait-freedom: every surviving process decided, and within the
  //     O(k) bound on compare&swap accesses the algorithm promises.
  verdict.wait_free = true;
  for (int pid = 0; pid < report.processes; ++pid) {
    const auto status = report.run.outcomes[static_cast<std::size_t>(pid)];
    const auto& outcome = report.outcomes[static_cast<std::size_t>(pid)];
    if (status == sim::ProcOutcome::kFinished) {
      if (!outcome.has_value() || outcome->leader == kNoId) {
        verdict.wait_free = false;
        diagnosis << "p" << pid << " finished without deciding; ";
      } else if (outcome->cas_accesses > max_iterations(report.k)) {
        verdict.wait_free = false;
        diagnosis << "p" << pid << " used " << outcome->cas_accesses
                  << " c&s accesses (> bound " << max_iterations(report.k)
                  << "); ";
      }
    } else if (status == sim::ProcOutcome::kFailed ||
               report.run.step_limit_hit) {
      verdict.wait_free = false;
      diagnosis << "p" << pid << " failed or hit the step limit; ";
    }
  }

  // --- Label soundness: history is a chain of first-value installs.
  verdict.label_sound = true;
  std::vector<int> installed;
  int previous = sim::CasRegisterK::kBottom;
  for (const auto& transition : report.cas_history) {
    if (transition.from != previous) {
      verdict.label_sound = false;
      diagnosis << "history transition " << transition.from << "->"
                << transition.to << " does not chain from " << previous
                << "; ";
    }
    installed.push_back(transition.to);
    previous = transition.to;
  }
  if (!is_permutation_prefix(installed, 1, report.k)) {
    verdict.label_sound = false;
    diagnosis << "history " << label_to_string(installed)
              << " reuses a symbol or leaves the domain; ";
  }

  verdict.diagnosis = diagnosis.str();
  return verdict;
}

}  // namespace bss::core
