// Post-run validation of election executions against the three requirements
// of the paper's LE problem — (a) Consistent, (b) Wait-free, (c) Valid —
// plus the label-soundness invariant the lower bound builds on (the
// compare&swap history is a permutation prefix: first-value installs only).
#pragma once

#include <string>

#include "core/sim_election.h"

namespace bss::core {

struct ElectionVerdict {
  bool consistent = false;   ///< all deciders elected the same identity
  bool valid = false;        ///< the elected identity was proposed
  bool wait_free = false;    ///< every non-crashed process decided, within the
                             ///< O(k) c&s-access bound
  bool label_sound = false;  ///< c&s history never reuses a symbol
  std::string diagnosis;     ///< human-readable failure detail

  bool ok() const { return consistent && valid && wait_free && label_sound; }
};

ElectionVerdict verify_election(const SimElectionReport& report);

}  // namespace bss::core
