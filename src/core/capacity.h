// The paper's capacity bounds for n_k — the maximum number of processes that
// can elect a leader wait-free with one compare&swap-(k) plus unbounded
// read/write registers — computed exactly.
//
//   burns_bound(k)       = k-1            one k-valued RMW register ALONE [5]
//   algorithmic_lower(k) = (k-1)!         witnessed by FirstValueTree (R1)
//   paper_upper(k)       = k^(k^2+3)      Theorem 1 (R2)
//   conjecture(k)        = k!             the paper's closing conjecture
//
// The bounds grow past uint64 almost immediately (paper_upper(4) = 4^19),
// hence BigUint.
#pragma once

#include "util/big_uint.h"

namespace bss::core {

/// k-1: capacity of a k-valued write-once RMW register with NO read/write
/// registers (Burns, Cruz, Loui [5]).
BigUint burns_bound(int k);

/// (k-1)!: the election algorithm's capacity — n_k is at least this.
BigUint algorithmic_lower(int k);

/// k^(k^2+3): Theorem 1's upper bound — n_k is at most O(this).
BigUint paper_upper(int k);

/// k!: the paper's conjectured true order of n_k.
BigUint conjecture(int k);

/// One row of the capacity table (T1), pre-rendered.
struct CapacityRow {
  int k = 0;
  BigUint burns;
  BigUint lower;
  BigUint conjectured;
  BigUint upper;
  /// lower/burns as a double: how much read/write registers add (≥ 1).
  double rw_amplification = 0;
  /// digits(upper) - digits(lower): the open gap, in decimal orders.
  int gap_digits = 0;
};

CapacityRow capacity_row(int k);

}  // namespace bss::core
