#include "core/llsc_election.h"

#include "util/checked.h"

namespace bss::core {

LlScElectionState::LlScElectionState(int k) : llsc("llsc", k) {
  confirm.reserve(static_cast<std::size_t>(k - 1));
  for (int stage = 0; stage < k - 1; ++stage) {
    confirm.emplace_back("confirm[" + std::to_string(stage) + "]", 0);
  }
  const std::uint64_t slots = slot_count(k);
  announce.reserve(slots);
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    announce.emplace_back("announce[" + std::to_string(slot) + "]",
                          sim::SwmrRegister<std::int64_t>::kAnyWriter, kNoId);
  }
}

LlScElectionReport run_llsc_election(int k, int n, sim::Scheduler& scheduler,
                                     const sim::FaultPlan& faults) {
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= slot_count(k),
          "LL/SC election capacity is (k-1)!");
  LlScElectionState state(k);
  LlScElectionReport report;
  report.outcomes.resize(static_cast<std::size_t>(n));

  sim::SimEnv env;
  for (int pid = 0; pid < n; ++pid) {
    env.add_process([&state, &report, pid](sim::Ctx& ctx) {
      LlScElectionMemory memory(state, ctx);
      report.outcomes[static_cast<std::size_t>(pid)] =
          fvt_elect(memory, static_cast<std::uint64_t>(pid), 1000 + pid);
    });
  }
  report.run = env.run(scheduler, faults);

  std::int64_t leader = kNoId;
  for (int pid = 0; pid < n; ++pid) {
    if (report.run.outcomes[static_cast<std::size_t>(pid)] !=
        sim::ProcOutcome::kFinished) {
      report.outcomes[static_cast<std::size_t>(pid)].reset();
      continue;
    }
    const auto& outcome = report.outcomes[static_cast<std::size_t>(pid)];
    if (outcome.has_value()) {
      if (leader == kNoId) leader = outcome->leader;
      if (outcome->leader != leader) report.consistent = false;
      if (outcome->leader < 1000 || outcome->leader >= 1000 + n) {
        report.valid = false;
      }
    }
  }
  return report;
}

}  // namespace bss::core
