// Crash-recovery leader election.
//
// The paper's adversary is fail-stop; the crash-*recovery* model is strictly
// harsher: a faulted process may come back, having lost every private local
// (its label copy, its iteration counter, the c&s value it was about to
// install) while all shared registers persist.  FirstValueTree turns out to
// be naturally recovery-safe, because fvt_elect keeps no private state that
// matters across an operation boundary:
//
//  * the announcement write is idempotent — a re-entered process rewrites
//    announce[my_slot] := my_id, the same value (SWMR, same writer);
//  * everything else is re-derived from shared state each iteration: the
//    confirmed label is re-read from the confirm registers, and any
//    unconfirmed install (a c&s the pre-crash incarnation won but did not
//    confirm) is re-validated through the normal helper-confirm path — by
//    the recovered process itself or by anyone else;
//  * the decision is a pure read of the announce register on the completed
//    path.
//
// recoverable_elect makes that contract explicit: it performs a *recovery
// audit* (the slot's announce register must hold either nothing or this
// process's own identity — re-claiming with the same immutable inputs is the
// one legal move) and then runs fvt_elect unchanged.  The audit is what a
// recovery-UNSAFE variant trips over; RestartBehavior::kFreshClaim below is
// exactly that seeded mutant: each incarnation mints a fresh slot and a
// fresh identity, the classic "recovered node rejoins as a new node" bug.
// The fault explorer (src/explore, fault_bound >= 1) must refute it with a
// minimized, replayable bss-counterexample v2 artifact.
#pragma once

#include <cstdint>
#include <vector>

#include "core/first_value_tree.h"
#include "core/sim_election.h"
#include "runtime/fault_plan.h"
#include "runtime/scheduler.h"

namespace bss::core {

/// How a process re-enters the election after a crash-restart.
enum class RestartBehavior {
  kRecover,     ///< recovery-safe: re-assert the same (slot, identity) claim
  kFreshClaim,  ///< seeded mutant: every incarnation mints a fresh slot + id
};

const char* to_string(RestartBehavior behavior);

/// Identity stride between incarnations of the kFreshClaim mutant: the i-th
/// incarnation proposes id + i * kFreshClaimIdStride — an identity nobody
/// registered, so electing it is a validity violation.
inline constexpr std::int64_t kFreshClaimIdStride = 1000;

/// The recovery-safe election entry point: audit the announce register for
/// this slot (empty or our own id — anything else means the caller broke
/// the immutable-inputs contract), then elect.  Safe to call any number of
/// times with the same (my_slot, my_id); every call decides the same leader.
template <ElectionMemory M>
ElectOutcome recoverable_elect(M& mem, std::uint64_t my_slot,
                               std::int64_t my_id,
                               const ElectPolicy& policy = {}) {
  const std::int64_t previously = mem.read_announce(my_slot);
  expects(previously == kNoId || previously == my_id,
          "recovery audit: slot already announced under a different identity");
  return fvt_elect(mem, my_slot, my_id, policy);
}

/// Report of a simulator run under crash-restart faults.  `election` feeds
/// verify_election unchanged (all four invariants apply verbatim in the
/// recovery model).
struct RecoverableElectionReport {
  SimElectionReport election;
  std::vector<int> restarts_by_pid;
};

/// Runs `n` restartable processes (n <= (k-1)!) under `scheduler` and
/// `faults`.  Every process registers its own program as its restart hook:
/// a restarted incarnation re-enters recoverable_elect with the same
/// immutable (slot, id) — or, with RestartBehavior::kFreshClaim, with the
/// mutant's freshly minted ones.
RecoverableElectionReport run_recoverable_sim_election(
    int k, int n, sim::Scheduler& scheduler, const sim::FaultPlan& faults = {},
    RestartBehavior behavior = RestartBehavior::kRecover,
    SimElectionOptions options = {});

/// Crash-restart storm on the std::thread backend: each thread aborts its
/// election at pre-drawn operation counts (losing all private state, exactly
/// like a simulator restart) and re-enters recoverable_elect, at most
/// `max_restarts` times.  Deterministic in `seed` up to thread interleaving.
struct RecoverableConcurrentReport {
  std::vector<ElectOutcome> outcomes;  // by thread index
  std::vector<int> restarts_by_thread;
  bool consistent = true;
  std::int64_t leader = kNoId;
};

RecoverableConcurrentReport run_recoverable_concurrent_election(
    int k, int n, std::uint64_t seed, double restart_p = 0.5,
    int max_restarts = 2);

}  // namespace bss::core
