// Lock-free FirstValueTree election on real hardware threads.
//
// The simulator backend proves the algorithm against every adversarial
// interleaving; this backend proves it is real lock-free code: the same
// fvt_elect template running on std::atomic with seq_cst ordering (the
// correctness argument in first_value_tree.h uses only a total order on the
// shared-memory operations plus per-object modification orders, which
// seq_cst supplies).  The bounded value domain of the compare&swap-(k) is
// enforced exactly as in the simulator object.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/first_value_tree.h"

namespace bss::core {

/// The election's shared memory as std::atomic words; shareable by any
/// number of OS threads.  Satisfies ElectionMemory directly (the atomics
/// make it safe to use one instance from all threads, unlike the simulator
/// adapter which binds a per-process Ctx).
class AtomicElectionMemory {
 public:
  explicit AtomicElectionMemory(int k);

  int k() const { return k_; }

  int cas(int expect, int next) {
    expects(expect >= 0 && expect < k_ && next >= 0 && next < k_,
            "compare&swap-(k): symbol outside value domain");
    int observed = expect;
    if (value_.compare_exchange_strong(observed, next,
                                       std::memory_order_seq_cst)) {
      return expect;
    }
    return observed;
  }

  int read_confirm(int stage) const {
    return confirm_[static_cast<std::size_t>(stage)].load(
        std::memory_order_seq_cst);
  }
  void write_confirm(int stage, int symbol) {
    confirm_[static_cast<std::size_t>(stage)].store(symbol,
                                                    std::memory_order_seq_cst);
  }
  std::int64_t read_announce(std::uint64_t slot) const {
    return announce_[static_cast<std::size_t>(slot)].load(
        std::memory_order_seq_cst);
  }
  void write_announce(std::uint64_t slot, std::int64_t id) {
    announce_[static_cast<std::size_t>(slot)].store(id,
                                                    std::memory_order_seq_cst);
  }

  /// Final register value, for post-run checks.
  int value() const { return value_.load(std::memory_order_seq_cst); }

 private:
  int k_;
  std::atomic<int> value_{0};
  std::vector<std::atomic<int>> confirm_;
  std::vector<std::atomic<std::int64_t>> announce_;
};

static_assert(ElectionMemory<AtomicElectionMemory>);

struct ConcurrentElectionReport {
  std::vector<ElectOutcome> outcomes;  // by thread index
  bool consistent = true;
  std::int64_t leader = kNoId;
};

/// Spawns `n` OS threads (n <= (k-1)!), each electing via fvt_elect; thread
/// t owns slot t and proposes identity 1000 + t.
ConcurrentElectionReport run_concurrent_election(int k, int n);

}  // namespace bss::core
