#include "core/path_math.h"

#include <algorithm>

#include "util/checked.h"
#include "util/factoradic.h"

namespace bss::core {

namespace {

// Symbols still unused after consuming `prefix`, ascending.
std::vector<int> available_symbols(std::span<const int> prefix, int k) {
  std::vector<bool> used(static_cast<std::size_t>(k), false);
  for (const int symbol : prefix) {
    expects(symbol >= 1 && symbol < k, "path symbol outside {1..k-1}");
    expects(!used[static_cast<std::size_t>(symbol)],
            "path prefix repeats a symbol");
    used[static_cast<std::size_t>(symbol)] = true;
  }
  std::vector<int> available;
  for (int symbol = 1; symbol < k; ++symbol) {
    if (!used[static_cast<std::size_t>(symbol)]) available.push_back(symbol);
  }
  return available;
}

}  // namespace

std::uint64_t slot_count(int k) {
  expects(k >= 2, "compare&swap-(k) needs k >= 2");
  return factorial_u64(k - 1);
}

std::vector<int> slot_path(std::uint64_t slot, int k) {
  expects(slot < slot_count(k), "slot out of range");
  const std::vector<int> perm = nth_permutation(slot, k - 1);
  std::vector<int> path;
  path.reserve(perm.size());
  for (const int element : perm) path.push_back(element + 1);
  return path;
}

std::uint64_t path_owner(std::span<const int> full_path, int k) {
  expects(static_cast<int>(full_path.size()) == k - 1,
          "path_owner needs a complete path");
  std::vector<int> perm;
  perm.reserve(full_path.size());
  for (const int symbol : full_path) {
    expects(symbol >= 1 && symbol < k, "path symbol outside {1..k-1}");
    perm.push_back(symbol - 1);
  }
  return permutation_rank(perm);
}

bool slot_extends(std::uint64_t slot, std::span<const int> prefix, int k) {
  const std::vector<int> path = slot_path(slot, k);
  if (prefix.size() > path.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), path.begin());
}

std::uint64_t extension_count(int k, int prefix_len) {
  expects(prefix_len >= 0 && prefix_len <= k - 1, "prefix length out of range");
  return factorial_u64(k - 1 - prefix_len);
}

std::uint64_t nth_slot_extending(std::span<const int> prefix, std::uint64_t j,
                                 int k) {
  const int width = k - 1;
  const int depth = bss::checked_cast<int>(prefix.size());
  expects(j < extension_count(k, depth), "extension index out of range");
  // Fixed digits: positions of the prefix symbols among the then-available
  // symbol pools.
  std::vector<int> digits;
  digits.reserve(static_cast<std::size_t>(width));
  std::vector<int> consumed;
  for (const int symbol : prefix) {
    const std::vector<int> pool = available_symbols(consumed, k);
    const auto it = std::lower_bound(pool.begin(), pool.end(), symbol);
    expects(it != pool.end() && *it == symbol, "prefix symbol not available");
    digits.push_back(bss::checked_cast<int>(it - pool.begin()));
    consumed.push_back(symbol);
  }
  // Free digits: the j-th combination in factoradic order.  Because slot
  // indices weight earlier digits more, ascending j gives ascending slots.
  const std::vector<int> tail = factoradic_digits(j, width - depth);
  digits.insert(digits.end(), tail.begin(), tail.end());
  return factoradic_index(digits);
}

}  // namespace bss::core
