// Simulator wiring for the FirstValueTree election: shared state, the
// per-process memory adapter, and a one-call runner used by tests, benches
// and examples.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/first_value_tree.h"
#include "registers/cas_register_k.h"
#include "registers/mwmr_register.h"
#include "registers/swmr_register.h"
#include "runtime/crash_plan.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace bss::core {

/// The election's shared memory as simulator objects: one compare&swap-(k),
/// k-1 confirm registers, (k-1)! announce registers.
struct SimElectionState {
  explicit SimElectionState(int k);

  sim::CasRegisterK cas;
  std::vector<sim::MwmrRegister<int>> confirm;
  std::vector<sim::SwmrRegister<std::int64_t>> announce;
};

/// Per-process adapter binding a Ctx to the shared state; satisfies
/// ElectionMemory.
class SimElectionMemory {
 public:
  SimElectionMemory(SimElectionState& state, sim::Ctx& ctx)
      : state_(&state), ctx_(&ctx) {}

  int k() const { return state_->cas.k(); }
  int cas(int expect, int next) {
    return state_->cas.compare_and_swap(*ctx_, expect, next);
  }
  int read_confirm(int stage) const {
    return state_->confirm[static_cast<std::size_t>(stage)].read(*ctx_);
  }
  void write_confirm(int stage, int symbol) {
    state_->confirm[static_cast<std::size_t>(stage)].write(*ctx_, symbol);
  }
  std::int64_t read_announce(std::uint64_t slot) const {
    return state_->announce[static_cast<std::size_t>(slot)].read(*ctx_);
  }
  void write_announce(std::uint64_t slot, std::int64_t id) {
    state_->announce[static_cast<std::size_t>(slot)].write(*ctx_, id);
  }

 private:
  SimElectionState* state_;
  sim::Ctx* ctx_;
};

static_assert(ElectionMemory<SimElectionMemory>);

/// Result of running a whole election system under the simulator.
struct SimElectionReport {
  int k = 0;
  int processes = 0;
  sim::RunReport run;
  /// Outcome per pid; empty optional for crashed processes.
  std::vector<std::optional<ElectOutcome>> outcomes;
  /// Successful compare&swap transitions, in order (the run's history).
  std::vector<sim::CasRegisterK::Transition> cas_history;
  std::uint64_t cas_total_accesses = 0;
  /// Identity proposed by pid (id_base + pid).
  std::int64_t proposed_id(int pid) const { return id_base + pid; }
  std::int64_t id_base = 1000;
};

struct SimElectionOptions {
  /// Process pid occupies slot pid by default; permute for stress variants.
  std::vector<std::uint64_t> slot_of_pid;  // empty = identity
  std::int64_t id_base = 1000;
  sim::SimOptions sim;
  /// Ablation knobs (bench_ablation); defaults are the full algorithm.
  ElectPolicy policy;
};

/// Runs `n` processes (n <= (k-1)!) electing a leader with a
/// compare&swap-(k) under `scheduler`, optionally crashing per `crashes`.
SimElectionReport run_sim_election(int k, int n, sim::Scheduler& scheduler,
                                   const sim::CrashPlan& crashes = {},
                                   SimElectionOptions options = {});

}  // namespace bss::core
