#include "core/concurrent_election.h"

#include <thread>

#include "util/checked.h"

namespace bss::core {

AtomicElectionMemory::AtomicElectionMemory(int k)
    : k_(k),
      confirm_(static_cast<std::size_t>(k - 1)),
      announce_(slot_count(k)) {
  expects(k >= 2, "compare&swap-(k) needs k >= 2");
  for (auto& cell : confirm_) cell.store(0, std::memory_order_relaxed);
  for (auto& cell : announce_) cell.store(kNoId, std::memory_order_relaxed);
}

ConcurrentElectionReport run_concurrent_election(int k, int n) {
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= slot_count(k),
          "thread count exceeds the (k-1)! capacity");
  AtomicElectionMemory memory(k);
  ConcurrentElectionReport report;
  report.outcomes.resize(static_cast<std::size_t>(n));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&memory, &report, t] {
      report.outcomes[static_cast<std::size_t>(t)] =
          fvt_elect(memory, static_cast<std::uint64_t>(t), 1000 + t);
    });
  }
  for (auto& thread : threads) thread.join();

  report.leader = report.outcomes.front().leader;
  for (const auto& outcome : report.outcomes) {
    if (outcome.leader != report.leader) report.consistent = false;
  }
  return report;
}

}  // namespace bss::core
