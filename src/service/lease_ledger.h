// The lease ledger: harness-side instrumentation that turns the service's
// own moves into a checkable history.
//
// Every service instance (sim or thread backend) records its lease
// lifecycle here — acquisitions, leader actions, renewals, step-downs —
// and the post-run check reconstructs each process's *reign* as a
// half-open interval [start, end) of virtual time.  The safety property of
// the whole service is one line: no two processes' reigns may overlap.
//
// The records are honest about what the service DID, not what it should
// have done: a mutant that keeps acting on a stale lease records leader
// actions past its expiry, and `led()` folds those into the reign's end,
// which is exactly how the overlap check catches it.  A crashed holder
// leaves its reign open; the check clips it at the recorded expiry (the
// moment the rest of the world was free to take over).
//
// Thread-safe (one mutex): the sim backend serializes all calls anyway,
// and the std::thread backend needs the lock.  Optionally mirrors lease
// lifecycle events into an obs::ObsSink — passive, like every sink in this
// repository: attaching one changes neither the records nor the check.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "service/lease_config.h"

namespace bss::obs {
class ObsSink;
}  // namespace bss::obs

namespace bss::service {

enum class StepDownReason {
  kExpired,      ///< woke past the expiry: the lease lapsed while asleep
  kDeposed,      ///< another process legitimately took the holder slot
  kRenewFailed,  ///< renewal SC retries exhausted; vacated gracefully
  kRetired,      ///< served the configured terms and released
};

const char* to_string(StepDownReason reason);

/// One tenure as leader.  `end` stays -1 while the reign is open (the
/// holder crashed or the run was truncated); the check then clips the
/// interval at `expiry`.
struct ReignRecord {
  int pid = -1;
  int incarnation = 0;
  std::uint64_t start = 0;   ///< phase-2 clock reading of the acquisition
  std::uint64_t expiry = 0;  ///< latest CONFIRMED expiry (renewals extend it)
  std::uint64_t acted = 0;   ///< latest recorded leader action (led())
  std::int64_t end = -1;     ///< step-down time; -1 while open
  StepDownReason reason = StepDownReason::kRetired;
};

/// Deterministic aggregate counters — the runreport's `service.*` stats.
struct LeaseStats {
  std::uint64_t leases_acquired = 0;
  std::uint64_t takeovers = 0;       ///< acquisitions over an expired holder
  std::uint64_t renewals = 0;
  std::uint64_t renew_failures = 0;
  std::uint64_t retries = 0;         ///< acquire waits + renewal SC retries
  std::uint64_t step_downs = 0;
  std::uint64_t expirations = 0;     ///< step-downs with kExpired
  std::uint64_t give_ups = 0;        ///< acquisitions abandoned at the budget
  std::uint64_t actions = 0;         ///< leader actions recorded via led()

  void merge_from(const LeaseStats& other);
};

class LeaseLedger {
 public:
  /// Attach telemetry (may be nullptr).  Lifecycle calls then emit
  /// service.acquire / service.renew / service.step_down / service.give_up
  /// events stamped with the virtual time.  Passive; call before the run.
  void set_obs_sink(obs::ObsSink* sink) { sink_ = sink; }

  void acquired(int pid, int incarnation, std::uint64_t start,
                std::uint64_t expiry, bool takeover);
  /// A leader action ("served a request") at virtual time `t`.  The service
  /// must only call this while it believes its lease valid; the record is
  /// folded into the reign's effective end either way.
  void led(int pid, std::uint64_t t);
  void renewed(int pid, std::uint64_t new_expiry);
  void renew_failed(int pid);
  void retried(int pid);
  void gave_up(int pid, std::uint64_t t);
  void stepped_down(int pid, std::uint64_t end, StepDownReason reason);

  /// The safety check: no two DIFFERENT pids' effective reign intervals
  /// may overlap.  Effective interval: [start, max(end-or-clip, acted)),
  /// where an open reign clips at its recorded expiry.  Returns the
  /// violation description, or nullopt when the history is safe.
  std::optional<std::string> check() const;

  LeaseStats stats() const;
  std::vector<ReignRecord> reigns() const;

  /// Deterministic serialization for the audit layer's commutation
  /// cross-check: reigns sorted by (start, pid, incarnation) plus the
  /// aggregate counters, so histories reached through swapped independent
  /// operations fingerprint identically.
  std::string fingerprint() const;

 private:
  ReignRecord* open_reign_locked(int pid);
  void emit_event(const char* kind, int pid, std::uint64_t t,
                  const char* detail);

  mutable std::mutex mutex_;
  std::vector<ReignRecord> reigns_;
  LeaseStats stats_;
  obs::ObsSink* sink_ = nullptr;
};

}  // namespace bss::service
