// Configuration for the lease-based leader-election service (src/service).
//
// All durations are virtual-clock ticks (runtime/sim_env.h: Ctx::now /
// Ctx::sleep_until on the sim backend, the shared logical clock on the
// thread backend).  The defaults are sized for exhaustive exploration:
// small terms keep schedule lengths short enough for the DFS to cover the
// whole timer x step x fault space at n = 2..3.
#pragma once

#include <cstdint>
#include <string>

#include "util/checked.h"

namespace bss::service {

/// Seeded service bugs the fault explorer must refute (the service analogue
/// of core::RestartBehavior::kFreshClaim).  Each mutant changes exactly one
/// decision in the renewal loop; the lease ledger's overlap check is what
/// catches the consequences.
enum class LeaseMutant {
  kNone,              ///< the correct service
  /// BUG: on waking for renewal the service skips the "is my lease still
  /// valid?" check and keeps acting on the stale lease — a successor that
  /// legitimately took over after the expiry then overlaps it.
  kRenewAfterExpiry,
  /// BUG: when the renewal store-conditional fails, the service assumes the
  /// renewal happened anyway (no graceful step-down): its private expiry
  /// runs ahead of the shared one, so a challenger that honors the shared
  /// expiry takes over while the mutant still believes it leads.
  kNoStepDownOnRenewFailure,
};

const char* to_string(LeaseMutant mutant);

struct LeaseConfig {
  /// Participating processes; fixes the holder register's value domain
  /// (1 + 2n: vacant, held(p), pend(p)).
  int n = 2;
  /// Lease duration granted per acquisition/renewal.
  std::uint64_t term = 8;
  /// A holder wakes to renew this many ticks before its expiry; must be
  /// strictly less than `term`.
  std::uint64_t renew_margin = 3;
  /// Renewal cycles a leader attempts before serving out its final term and
  /// retiring (0: acquire, serve one term, step down).
  int renewals = 1;
  /// Bounded acquisition attempts; waiting out a valid holder's lease
  /// consumes one attempt.
  int acquire_attempts = 2;
  /// Retries of a failed renewal store-conditional while the lease is still
  /// believed valid (spurious SC failures are retryable; being deposed is
  /// not).
  int sc_retries = 1;
  /// Base unit of the deterministic backoff added when waiting out another
  /// process's lease (the stagger keeps challengers from stampeding the
  /// expiry tick).
  std::uint64_t backoff_base = 1;
  /// Seeds the deterministic backoff jitter; same seed, same waits.
  std::uint64_t seed = 0x1ea5e;

  void validate() const {
    expects(n >= 1, "lease service needs at least one process");
    expects(term > renew_margin, "lease term must exceed the renew margin");
    expects(renewals >= 0 && acquire_attempts >= 1 && sc_retries >= 0,
            "lease retry budgets must be non-negative");
  }
};

/// Holder-register token encoding over the bounded domain 1 + 2n:
/// 0 is vacant, 1+p is held(p), 1+n+p is pend(p) — pend is the first phase
/// of the two-phase acquisition/renewal (claim the slot, then publish the
/// expiry, then confirm).  Only held(p) confers acting rights.
inline constexpr int kVacant = 0;
constexpr int holder_domain(int n) { return 1 + 2 * n; }
constexpr int held_token(int n, int pid) {
  (void)n;
  return 1 + pid;
}
constexpr int pend_token(int n, int pid) { return 1 + n + pid; }
/// The pid a non-vacant token belongs to (held or pend).
constexpr int token_owner(int n, int token) {
  return token == kVacant ? -1 : token <= n ? token - 1 : token - 1 - n;
}
constexpr bool is_pend(int n, int token) { return token > n; }

/// Deterministic backoff stagger for `pid`'s `attempt`-th wait: a small
/// seeded jitter in [0, base] plus a linear term, so concurrent waiters
/// spread out without any source of nondeterminism (splitmix-style hash of
/// (seed, pid, attempt)).
constexpr std::uint64_t lease_backoff(const LeaseConfig& config, int pid,
                                      int attempt) {
  std::uint64_t z = config.seed + 0x9e3779b97f4a7c15ULL *
                                      (static_cast<std::uint64_t>(pid) * 31 +
                                       static_cast<std::uint64_t>(attempt) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const std::uint64_t jitter =
      config.backoff_base == 0 ? 0 : z % (config.backoff_base + 1);
  return config.backoff_base * static_cast<std::uint64_t>(attempt) + jitter;
}

}  // namespace bss::service
