#include "service/lease_system.h"

#include <optional>
#include <sstream>

#include "service/lease_ledger.h"
#include "service/lease_service.h"
#include "service/sim_platform.h"

namespace bss::service {

namespace {

class LeaseInstance final : public explore::SystemInstance {
 public:
  LeaseInstance(const LeaseConfig& config, LeaseMutant mutant)
      : config_(config), mutant_(mutant), state_(config) {}

  void populate(sim::SimEnv& env) override {
    for (int pid = 0; pid < config_.n; ++pid) {
      const auto program = [this, pid](sim::Ctx& ctx) {
        (void)pid;
        SimLeasePlatform plat(ctx, state_);
        run_lease_session(plat, ledger_, config_, mutant_);
      };
      // The session is its own restart hook: a fresh incarnation lost its
      // locals and re-enters acquisition, where its own stale registration
      // is waited out like any other holder's.
      env.add_process(program, program);
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    for (int pid = 0; pid < config_.n; ++pid) {
      const auto outcome = report.outcomes[static_cast<std::size_t>(pid)];
      if (outcome == sim::ProcOutcome::kCrashed) continue;  // adversary's move
      if (outcome == sim::ProcOutcome::kFailed) {
        return "p" + std::to_string(pid) +
               " failed: " + report.errors[static_cast<std::size_t>(pid)];
      }
      if (outcome != sim::ProcOutcome::kFinished) {
        return "p" + std::to_string(pid) + " never finished";
      }
    }
    return ledger_.check();
  }

  std::string fingerprint(const sim::SimEnv& env) override {
    std::ostringstream out;
    out << "holder=" << state_.holder.peek() << ";expiry=[";
    for (const auto& reg : state_.expiry) out << reg.peek() << ',';
    out << "];clock=" << env.virtual_now() << ';' << ledger_.fingerprint();
    return out.str();
  }

 private:
  LeaseConfig config_;
  LeaseMutant mutant_;
  LeaseSharedState state_;
  LeaseLedger ledger_;
};

}  // namespace

LeaseServiceSystem::LeaseServiceSystem(LeaseConfig config, LeaseMutant mutant)
    : config_(config), mutant_(mutant) {
  config_.validate();
}

std::string LeaseServiceSystem::name() const {
  std::ostringstream out;
  out << "lease[n=" << config_.n << ",term=" << config_.term
      << ",margin=" << config_.renew_margin
      << ",renewals=" << config_.renewals
      << ",attempts=" << config_.acquire_attempts
      << ",sc_retries=" << config_.sc_retries;
  if (mutant_ != LeaseMutant::kNone) out << ",mutant=" << to_string(mutant_);
  out << ']';
  return out.str();
}

int LeaseServiceSystem::process_count() const { return config_.n; }

std::unique_ptr<explore::SystemInstance> LeaseServiceSystem::make() const {
  return std::make_unique<LeaseInstance>(config_, mutant_);
}

}  // namespace bss::service
