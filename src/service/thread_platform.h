// std::thread backend for the lease service: the same protocol template
// (service/lease_service.h) running on real atomics under real
// parallelism, with a crash-restart storm harness that injects aborts and
// spurious SC failures from a pre-drawn deterministic plan.  The sim
// backend proves the protocol safe on EVERY schedule; this backend checks
// the proof survives contact with the hardware memory model (run under
// TSan/ASan in CI).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/lease_config.h"
#include "service/lease_ledger.h"

namespace bss::service {

/// Shared lease state on real atomics.  The holder register is a packed
/// (version << 32 | token) word so load-link / store-conditional can be
/// emulated with one CAS: SC succeeds iff the version still matches the
/// link, and every successful SC bumps the version (no ABA).  The clock is
/// a logical fetch-max counter — sleep_until(d) advances it to at least d
/// and returns the new reading, mirroring the sim's virtual-timer grant.
class ThreadLeaseBoard {
 public:
  explicit ThreadLeaseBoard(const LeaseConfig& config)
      : n_(config.n),
        expiry_(std::make_unique<std::atomic<std::int64_t>[]>(
            static_cast<std::size_t>(config.n))) {
    for (int p = 0; p < n_; ++p) {
      expiry_[static_cast<std::size_t>(p)].store(0, std::memory_order_relaxed);
    }
  }

  std::uint64_t load_link() const {
    return holder_.load(std::memory_order_acquire);
  }
  /// One-shot SC against the linked word: succeeds iff nothing intervened.
  bool store_conditional(std::uint64_t linked, int next) {
    const std::uint64_t version = (linked >> 32) + 1;
    const std::uint64_t desired =
        (version << 32) | static_cast<std::uint32_t>(next);
    return holder_.compare_exchange_strong(linked, desired,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire);
  }
  static int token_of(std::uint64_t word) {
    return static_cast<int>(word & 0xffffffffULL);
  }

  std::uint64_t clock_now() const {
    return clock_.load(std::memory_order_acquire);
  }
  /// Advance the logical clock to at least `deadline` (fetch-max via CAS)
  /// and return the post-advance reading.
  std::uint64_t clock_advance(std::uint64_t deadline) {
    std::uint64_t seen = clock_.load(std::memory_order_relaxed);
    while (seen < deadline &&
           !clock_.compare_exchange_weak(seen, deadline,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
    }
    return std::max(seen, deadline);
  }

  std::int64_t expiry_read(int owner) const {
    return expiry_[static_cast<std::size_t>(owner)].load(
        std::memory_order_acquire);
  }
  void expiry_write(int owner, std::int64_t value) {
    expiry_[static_cast<std::size_t>(owner)].store(value,
                                                   std::memory_order_release);
  }

  int n() const { return n_; }

 private:
  int n_;
  std::atomic<std::uint64_t> holder_{0};  ///< version << 32 | token (vacant)
  std::atomic<std::uint64_t> clock_{0};
  std::unique_ptr<std::atomic<std::int64_t>[]> expiry_;
};

/// Thrown by the platform mid-protocol when the storm plan kills this
/// incarnation; the per-process driver catches it and re-enters the session
/// as a fresh incarnation (the service's restart path).
struct ThreadLeaseRestart {};

/// Per-process fault plan for one storm run, pre-drawn so the whole storm
/// is a pure function of its seed.  `abort_before_op[i]` kills incarnation
/// i after that many platform ops (one entry per planned crash);
/// `spurious_sc` marks (incarnation, sc_ordinal) pairs whose SC fails
/// spuriously with the link intact.
struct ThreadFaultScript {
  std::vector<int> abort_before_op;
  std::vector<std::pair<int, int>> spurious_sc;
};

/// LeasePlatform over a ThreadLeaseBoard.  Counts ops to trigger scripted
/// aborts, and scripted spurious SC failures by per-incarnation SC ordinal.
class ThreadLeasePlatform {
 public:
  ThreadLeasePlatform(ThreadLeaseBoard& board, int pid,
                      ThreadFaultScript script = {})
      : board_(board), pid_(pid), script_(std::move(script)) {}

  /// Begin incarnation `i`: resets the op and SC counters and the link.
  void begin_incarnation(int i) {
    incarnation_ = i;
    ops_ = 0;
    sc_ordinal_ = 0;
    linked_.reset();
  }
  int spurious_delivered() const { return spurious_delivered_; }

  int pid() const { return pid_; }
  int incarnation() const { return incarnation_; }
  std::uint64_t now() {
    tick();
    return board_.clock_now();
  }
  std::uint64_t sleep_until(std::uint64_t deadline) {
    tick();
    return board_.clock_advance(deadline);
  }
  int holder_ll() {
    tick();
    const std::uint64_t word = board_.load_link();
    linked_ = word;
    return ThreadLeaseBoard::token_of(word);
  }
  bool holder_sc(int next) {
    tick();
    const int ordinal = sc_ordinal_++;
    if (!linked_.has_value()) return false;
    const std::uint64_t word = *linked_;
    linked_.reset();
    for (const auto& [inc, ord] : script_.spurious_sc) {
      if (inc == incarnation_ && ord == ordinal) {
        // Spurious failure: report failure, leave the word untouched.  The
        // protocol's retry does a fresh LL, so no link restoration needed.
        ++spurious_delivered_;
        return false;
      }
    }
    return board_.store_conditional(word, next);
  }
  std::int64_t expiry_read(int owner) {
    tick();
    return board_.expiry_read(owner);
  }
  void expiry_write(std::int64_t value) {
    tick();
    board_.expiry_write(pid_, value);
  }

 private:
  void tick() {
    const auto i = static_cast<std::size_t>(incarnation_);
    if (i < script_.abort_before_op.size() &&
        ops_ >= script_.abort_before_op[i]) {
      throw ThreadLeaseRestart{};
    }
    ++ops_;
  }

  ThreadLeaseBoard& board_;
  int pid_;
  ThreadFaultScript script_;
  int incarnation_ = 0;
  int ops_ = 0;
  int sc_ordinal_ = 0;
  int spurious_delivered_ = 0;
  std::optional<std::uint64_t> linked_;
};

/// One storm run's outcome: the merged ledger verdict plus fault-delivery
/// accounting, so tests can assert the storm actually exercised the paths.
struct ThreadStormReport {
  LeaseStats stats;
  std::optional<std::string> violation;  ///< nullopt: every reign disjoint
  int restarts = 0;                      ///< crash-restarts actually delivered
  int spurious_delivered = 0;            ///< spurious SC failures consumed
};

/// Runs config.n service processes on real threads under a seeded
/// crash-restart storm: each process draws `max_crashes` scripted aborts
/// and a handful of spurious SC failures from `seed`, runs the session to
/// completion across incarnations, and the merged ledger is checked for
/// overlap.  Deterministic plan, nondeterministic interleaving — the
/// property must hold regardless.
ThreadStormReport run_thread_lease_storm(const LeaseConfig& config,
                                         std::uint64_t seed, int max_crashes,
                                         LeaseMutant mutant = LeaseMutant::kNone);

}  // namespace bss::service
