// ExplorableSystem adapter for the lease service: every explored schedule
// runs a fresh LeaseSharedState + LeaseLedger with config.n restartable
// service processes, and the post-run property is the ledger's "no two
// overlapping reigns" check.  Timer firings are ordinary explorer
// decisions (runtime/sim_env.h virtual time), so the schedule space the
// explorer covers is steps x timers x faults.
#pragma once

#include <memory>
#include <string>

#include "explore/system.h"
#include "service/lease_config.h"

namespace bss::service {

class LeaseServiceSystem final : public explore::ExplorableSystem {
 public:
  explicit LeaseServiceSystem(LeaseConfig config,
                              LeaseMutant mutant = LeaseMutant::kNone);

  std::string name() const override;
  int process_count() const override;
  std::unique_ptr<explore::SystemInstance> make() const override;

 private:
  LeaseConfig config_;
  LeaseMutant mutant_;
};

}  // namespace bss::service
