// Simulator backend for the lease service: the shared state lives in the
// repo's bounded registers (LL/SC holder + SWMR expiry array) and time is
// the SimEnv virtual clock, so the explorer enumerates every interleaving
// of steps, timer firings, and injected faults of a full service run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "registers/ll_sc.h"
#include "registers/swmr_register.h"
#include "runtime/sim_env.h"
#include "service/lease_config.h"

namespace bss::service {

/// The service's shared memory for one simulated instance: the bounded
/// holder register (domain 1 + 2n) and one single-writer expiry register
/// per process.  Construct once per run; hand each process a
/// SimLeasePlatform view.
struct LeaseSharedState {
  explicit LeaseSharedState(const LeaseConfig& config)
      : holder("holder", holder_domain(config.n), kVacant) {
    expiry.reserve(static_cast<std::size_t>(config.n));
    for (int p = 0; p < config.n; ++p) {
      expiry.emplace_back("expiry" + std::to_string(p), p, std::int64_t{0});
    }
  }

  sim::LlScRegisterK holder;
  std::vector<sim::SwmrRegister<std::int64_t>> expiry;
};

/// Adapts one process's Ctx to the LeasePlatform concept.  Every call is a
/// simulation step (sync + footprint), so the explorer schedules them.
class SimLeasePlatform {
 public:
  SimLeasePlatform(sim::Ctx& ctx, LeaseSharedState& state)
      : ctx_(ctx), state_(state) {}

  int pid() const { return ctx_.pid(); }
  int incarnation() const { return ctx_.incarnation(); }
  std::uint64_t now() { return ctx_.now(); }
  std::uint64_t sleep_until(std::uint64_t deadline) {
    return ctx_.sleep_until(deadline);
  }
  int holder_ll() { return state_.holder.load_link(ctx_); }
  bool holder_sc(int next) { return state_.holder.store_conditional(ctx_, next); }
  std::int64_t expiry_read(int owner) {
    return state_.expiry[static_cast<std::size_t>(owner)].read(ctx_);
  }
  void expiry_write(std::int64_t value) {
    state_.expiry[static_cast<std::size_t>(ctx_.pid())].write(ctx_, value);
  }

 private:
  sim::Ctx& ctx_;
  LeaseSharedState& state_;
};

}  // namespace bss::service
