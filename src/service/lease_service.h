// The lease-based leader-election service: a two-phase lease protocol over
// the bounded LL/SC holder register plus per-process expiry registers,
// written once against a small platform concept so the SAME protocol code
// runs on the deterministic simulator (where the explorer races its timers
// against steps and faults) and on real std::threads.
//
// Shared state (see lease_config.h for the token encoding):
//
//   holder : LL/SC register over 1 + 2n values — vacant / held(p) / pend(p)
//   E[p]   : per-process expiry register, written only by p
//
// Two-phase acquisition and renewal, the crux of the safety argument:
// claiming the slot and publishing the expiry cannot be one atomic step on
// a bounded register, so the claimer first installs pend(p) (an SC), then
// writes E[p], then confirms held(p) (a second SC).  Challengers honor
// pend like held — they read the owner's expiry and wait it out — so the
// window where E[p] is still stale is protected by the OLD expiry value,
// and any challenger that squeezes into that window (reads the stale,
// already-past expiry) breaks the claimer's link, making the confirm SC
// fail.  Consequence: a reign begins only at a successful confirm, and at
// that point the published expiry already covers it.  The same shape
// protects renewal: pend(p), republish E[p], confirm held(p).  A renewal
// SC that fails spuriously (hardware-faithful LL/SC, FaultPlan::fail_sc)
// is retried a bounded number of times and then the service steps down
// gracefully — the shared expiry was never extended, so the world may
// already have moved on.
//
// Safety property (checked by the lease ledger): no two processes' reigns
// overlap.  Proof sketch of the invariant maintained by every path: a
// process's recorded reign never extends past its last PUBLISHED expiry,
// and a challenger's reign never starts before the holder's published
// expiry as of the challenger's successful pend-SC (LL/SC orders the
// publish before the steal).  The two seeded mutants each break exactly
// one half of that invariant.
//
// Crash-recovery: the session is its own restart hook.  A restarted
// incarnation lost every private local (its believed expiry included) and
// simply re-enters acquisition, where its own stale registration looks
// like any other holder's — it waits out its own old lease.  No recovery
// audit is needed; the protocol is recovery-safe by construction.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>

#include "service/lease_config.h"
#include "service/lease_ledger.h"

namespace bss::service {

/// What the protocol needs from a backend.  Sim: service/sim_platform.h
/// (SimEnv registers + virtual clock).  Threads: service/thread_platform.h
/// (atomics + a shared logical clock).
template <class P>
concept LeasePlatform = requires(P p, int v, std::int64_t e, std::uint64_t t) {
  { p.pid() } -> std::convertible_to<int>;
  { p.incarnation() } -> std::convertible_to<int>;
  { p.now() } -> std::convertible_to<std::uint64_t>;
  { p.sleep_until(t) } -> std::convertible_to<std::uint64_t>;
  { p.holder_ll() } -> std::convertible_to<int>;
  { p.holder_sc(v) } -> std::convertible_to<bool>;
  { p.expiry_read(v) } -> std::convertible_to<std::int64_t>;
  p.expiry_write(e);
};

/// Vacates the holder slot iff we still own it (held or pend).  Best
/// effort: a failed SC means somebody legitimately took over in between,
/// which needs no cleanup.
template <LeasePlatform P>
void release_lease(P& plat, const LeaseConfig& config) {
  const int h = plat.holder_ll();
  if (h == held_token(config.n, plat.pid()) ||
      h == pend_token(config.n, plat.pid())) {
    plat.holder_sc(kVacant);
  }
}

/// Bounded acquisition with deterministic backoff.  Returns true with the
/// confirmed expiry in `expiry_out`; false when the attempt budget ran out.
template <LeasePlatform P>
bool acquire_lease(P& plat, LeaseLedger& ledger, const LeaseConfig& config,
                   std::uint64_t* expiry_out) {
  const int me = plat.pid();
  for (int attempt = 0; attempt < config.acquire_attempts; ++attempt) {
    if (attempt > 0) ledger.retried(me);
    const int h = plat.holder_ll();
    bool takeover = false;
    if (h != kVacant) {
      const int owner = token_owner(config.n, h);
      const auto e = static_cast<std::uint64_t>(plat.expiry_read(owner));
      const std::uint64_t t = plat.now();
      if (t < e) {
        // A live lease (held or mid-handoff pend): wait it out with a
        // seeded stagger so challengers don't stampede the expiry tick.
        // The wait is skipped on the final attempt — with no retry to arm,
        // sleeping would only delay the give-up.
        if (attempt + 1 < config.acquire_attempts) {
          plat.sleep_until(e + lease_backoff(config, me, attempt));
        }
        continue;
      }
      takeover = true;  // the published expiry has passed: the slot is fair game
    }
    // Phase 1: claim the pend slot.  Fails if anyone moved since our LL.
    if (!plat.holder_sc(pend_token(config.n, me))) continue;
    // Phase 2: publish our expiry, then confirm.  Until the confirm lands,
    // challengers reading the OLD E[me] may legally steal the slot — their
    // SC then breaks our link and the confirm below fails.
    const std::uint64_t start = plat.now();
    const std::uint64_t expiry = start + config.term;
    plat.expiry_write(static_cast<std::int64_t>(expiry));
    if (plat.holder_ll() != pend_token(config.n, me)) continue;
    if (!plat.holder_sc(held_token(config.n, me))) continue;
    ledger.acquired(me, plat.incarnation(), start, expiry, takeover);
    *expiry_out = expiry;
    return true;
  }
  ledger.gave_up(me, plat.now());
  return false;
}

/// One full service session: acquire, renew `config.renewals` times, serve
/// out the final term, step down.  `mutant` selects a seeded bug (see
/// LeaseMutant); the ledger records what actually happened either way.
template <LeasePlatform P>
void run_lease_session(P& plat, LeaseLedger& ledger, const LeaseConfig& config,
                       LeaseMutant mutant = LeaseMutant::kNone) {
  config.validate();
  const int me = plat.pid();
  std::uint64_t valid_until = 0;
  if (!acquire_lease(plat, ledger, config, &valid_until)) return;

  for (int cycle = 0; cycle < config.renewals; ++cycle) {
    const std::uint64_t margin = std::min(config.renew_margin, valid_until);
    const std::uint64_t t = plat.sleep_until(valid_until - margin);
    if (mutant != LeaseMutant::kRenewAfterExpiry && t >= valid_until) {
      // The lease lapsed while we slept.  We never acted past valid_until,
      // so the reign truthfully ended there; vacate if nobody moved in yet.
      ledger.stepped_down(me, valid_until, StepDownReason::kExpired);
      release_lease(plat, config);
      return;
    }
    // Leader work: serve one request at time t.  The correct service only
    // reaches this point with a live lease; kRenewAfterExpiry reaches it on
    // a stale one, and this recorded action is exactly what the ledger's
    // overlap check convicts it with.
    ledger.led(me, t);

    // Renewal phase 1: re-claim our own slot as pend(me).  A failure is
    // either a spurious SC (retryable) or a successor's takeover (final).
    bool pended = false;
    for (int attempt = 0; attempt <= config.sc_retries; ++attempt) {
      if (attempt > 0) ledger.retried(me);
      if (plat.holder_ll() != held_token(config.n, me)) break;  // deposed
      if (plat.holder_sc(pend_token(config.n, me))) {
        pended = true;
        break;
      }
    }
    if (!pended) {
      ledger.renew_failed(me);
      if (mutant == LeaseMutant::kNoStepDownOnRenewFailure &&
          plat.holder_ll() == held_token(config.n, me)) {
        // BUG: the failed SC left our token in place, so the failure was
        // merely spurious — and instead of stepping down (or retrying the
        // SC), the service assumes the renewal landed anyway.  Its private
        // expiry now runs ahead of the published one, so a challenger that
        // honors the published expiry will overlap it.  Note the guard:
        // without a spurious failure an SC only fails because somebody
        // moved the token, the re-check sees that, and even this mutant
        // steps down — refuting it takes an injected "s" fault.
        valid_until = t + config.term;
        ledger.renewed(me, valid_until);
        continue;
      }
      // Graceful step-down: the shared expiry was never extended, so stop
      // acting at whichever came first — our old validity or right now —
      // and vacate if the slot is still ours.
      ledger.stepped_down(me, std::min(valid_until, t),
                          StepDownReason::kRenewFailed);
      release_lease(plat, config);
      return;
    }
    // Renewal phase 2: publish the extended expiry, confirm held(me).
    const std::uint64_t extended = t + config.term;
    plat.expiry_write(static_cast<std::int64_t>(extended));
    if (plat.holder_ll() != pend_token(config.n, me) ||
        !plat.holder_sc(held_token(config.n, me))) {
      // Stolen mid-handoff (a challenger squeezed into the stale-expiry
      // window) or a spurious confirm failure: either way the renewal did
      // not land, so step down as above.
      ledger.renew_failed(me);
      ledger.stepped_down(me, std::min(valid_until, t),
                          StepDownReason::kDeposed);
      release_lease(plat, config);
      return;
    }
    valid_until = extended;
    ledger.renewed(me, valid_until);
  }

  // Served every configured term: let the lease lapse, then retire.  The
  // timer guarantees we are past valid_until when we wake, so the reign
  // ends exactly at its published expiry.
  plat.sleep_until(valid_until);
  ledger.stepped_down(me, valid_until, StepDownReason::kRetired);
  release_lease(plat, config);
}

}  // namespace bss::service
