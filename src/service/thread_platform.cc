#include "service/thread_platform.h"

#include <atomic>
#include <thread>
#include <utility>

#include "service/lease_service.h"
#include "util/rng.h"

namespace bss::service {

namespace {

/// Pre-draws one process's fault script from (seed, pid): up to
/// `max_crashes` aborts at small op offsets, plus a couple of spurious SC
/// failures spread over the incarnations those crashes create.  Pure
/// function of its inputs, so a storm run is replayable by seed.
ThreadFaultScript draw_script(std::uint64_t seed, int pid, int max_crashes) {
  Rng rng(seed ^ (0x5707 + static_cast<std::uint64_t>(pid) * 0x9e3779b9));
  ThreadFaultScript script;
  const int crashes = max_crashes == 0 ? 0 : rng.next_int(max_crashes + 1);
  for (int i = 0; i < crashes; ++i) {
    // Service sessions are short (a few dozen platform ops); early offsets
    // land the abort inside acquisition or the first renewal cycle.
    script.abort_before_op.push_back(1 + rng.next_int(24));
  }
  const int spurious = rng.next_int(3);
  for (int i = 0; i < spurious; ++i) {
    script.spurious_sc.emplace_back(rng.next_int(crashes + 1),
                                    rng.next_int(4));
  }
  return script;
}

}  // namespace

ThreadStormReport run_thread_lease_storm(const LeaseConfig& config,
                                         std::uint64_t seed, int max_crashes,
                                         LeaseMutant mutant) {
  config.validate();
  ThreadLeaseBoard board(config);
  LeaseLedger ledger;
  std::atomic<int> restarts{0};
  std::atomic<int> spurious_delivered{0};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.n));
  for (int p = 0; p < config.n; ++p) {
    threads.emplace_back([&, p] {
      ThreadLeasePlatform plat(board, p, draw_script(seed, p, max_crashes));
      // Crash-restart loop: an aborted incarnation loses every local and
      // re-enters the session fresh — the same recovery story the sim
      // backend model-checks exhaustively.
      for (int incarnation = 0;; ++incarnation) {
        plat.begin_incarnation(incarnation);
        try {
          run_lease_session(plat, ledger, config, mutant);
          break;
        } catch (const ThreadLeaseRestart&) {
          restarts.fetch_add(1, std::memory_order_relaxed);
        }
      }
      spurious_delivered.fetch_add(plat.spurious_delivered(),
                                   std::memory_order_relaxed);
    });
  }
  for (std::thread& t : threads) t.join();

  ThreadStormReport report;
  report.stats = ledger.stats();
  report.violation = ledger.check();
  report.restarts = restarts.load(std::memory_order_relaxed);
  report.spurious_delivered =
      spurious_delivered.load(std::memory_order_relaxed);
  return report;
}

}  // namespace bss::service
