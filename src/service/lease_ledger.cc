#include "service/lease_ledger.h"

#include <algorithm>
#include <sstream>

#include "obs/obs.h"
#include "util/checked.h"

namespace bss::service {

const char* to_string(LeaseMutant mutant) {
  switch (mutant) {
    case LeaseMutant::kNone:
      return "none";
    case LeaseMutant::kRenewAfterExpiry:
      return "renew-after-expiry";
    case LeaseMutant::kNoStepDownOnRenewFailure:
      return "no-step-down";
  }
  return "?";
}

const char* to_string(StepDownReason reason) {
  switch (reason) {
    case StepDownReason::kExpired:
      return "expired";
    case StepDownReason::kDeposed:
      return "deposed";
    case StepDownReason::kRenewFailed:
      return "renew-failed";
    case StepDownReason::kRetired:
      return "retired";
  }
  return "?";
}

void LeaseStats::merge_from(const LeaseStats& other) {
  leases_acquired += other.leases_acquired;
  takeovers += other.takeovers;
  renewals += other.renewals;
  renew_failures += other.renew_failures;
  retries += other.retries;
  step_downs += other.step_downs;
  expirations += other.expirations;
  give_ups += other.give_ups;
  actions += other.actions;
}

ReignRecord* LeaseLedger::open_reign_locked(int pid) {
  // Reigns per pid are sequential: at most the LAST record of a pid can be
  // open (a new incarnation only acquires after the old reign closed or its
  // holder crashed — and a crash leaves exactly one open record behind).
  for (auto it = reigns_.rbegin(); it != reigns_.rend(); ++it) {
    if (it->pid == pid && it->end < 0) return &*it;
  }
  return nullptr;
}

void LeaseLedger::emit_event(const char* kind, int pid, std::uint64_t t,
                             const char* detail) {
  if (sink_ == nullptr || !sink_->events_enabled()) return;
  obs::Event event;
  event.kind = kind;
  event.step = t;  // virtual time: deterministic per schedule
  event.fields.emplace_back("pid", std::to_string(pid));
  if (detail != nullptr) event.fields.emplace_back("reason", detail);
  sink_->emit(std::move(event));
}

void LeaseLedger::acquired(int pid, int incarnation, std::uint64_t start,
                           std::uint64_t expiry, bool takeover) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ReignRecord record;
  record.pid = pid;
  record.incarnation = incarnation;
  record.start = start;
  record.expiry = expiry;
  record.acted = start;
  reigns_.push_back(record);
  ++stats_.leases_acquired;
  if (takeover) ++stats_.takeovers;
  emit_event("service.acquire", pid, start, takeover ? "takeover" : "vacant");
}

void LeaseLedger::led(int pid, std::uint64_t t) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.actions;
  ReignRecord* reign = open_reign_locked(pid);
  if (reign != nullptr) reign->acted = std::max(reign->acted, t);
}

void LeaseLedger::renewed(int pid, std::uint64_t new_expiry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.renewals;
  ReignRecord* reign = open_reign_locked(pid);
  if (reign != nullptr) reign->expiry = std::max(reign->expiry, new_expiry);
  emit_event("service.renew", pid, new_expiry, nullptr);
}

void LeaseLedger::renew_failed(int pid) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.renew_failures;
  (void)pid;
}

void LeaseLedger::retried(int pid) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.retries;
  (void)pid;
}

void LeaseLedger::gave_up(int pid, std::uint64_t t) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.give_ups;
  emit_event("service.give_up", pid, t, nullptr);
}

void LeaseLedger::stepped_down(int pid, std::uint64_t end,
                               StepDownReason reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.step_downs;
  if (reason == StepDownReason::kExpired) ++stats_.expirations;
  ReignRecord* reign = open_reign_locked(pid);
  expects(reign != nullptr, "lease ledger: step-down without an open reign");
  reign->end = static_cast<std::int64_t>(end);
  reign->reason = reason;
  emit_event("service.step_down", pid, end, to_string(reason));
}

namespace {

/// The effective half-open interval a record claims: an open reign (crash,
/// truncation) clips at its recorded expiry; a recorded leader action past
/// the closed end extends it (that is the mutants' tell — the correct
/// service never acts past its believed validity).  Granularity rule: the
/// tick is the clock's resolution, so intervals are compared half-open and
/// a within-tick handoff (predecessor ends at the tick the successor
/// starts) counts as disjoint — the holder register, not the clock, is
/// what orders records inside one tick.
std::pair<std::uint64_t, std::uint64_t> effective_interval(
    const ReignRecord& record) {
  std::uint64_t hi =
      record.end >= 0 ? static_cast<std::uint64_t>(record.end) : record.expiry;
  hi = std::max(hi, record.acted);
  return {record.start, hi};
}

}  // namespace

std::optional<std::string> LeaseLedger::check() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < reigns_.size(); ++i) {
    for (std::size_t j = i + 1; j < reigns_.size(); ++j) {
      const ReignRecord& a = reigns_[i];
      const ReignRecord& b = reigns_[j];
      if (a.pid == b.pid) continue;
      const auto [a_lo, a_hi] = effective_interval(a);
      const auto [b_lo, b_hi] = effective_interval(b);
      if (a_lo < b_hi && b_lo < a_hi) {
        std::ostringstream out;
        out << "overlapping leases: p" << a.pid << " held [" << a_lo << ", "
            << a_hi << ") while p" << b.pid << " held [" << b_lo << ", "
            << b_hi << ")";
        return out.str();
      }
    }
  }
  return std::nullopt;
}

LeaseStats LeaseLedger::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<ReignRecord> LeaseLedger::reigns() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return reigns_;
}

std::string LeaseLedger::fingerprint() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ReignRecord> sorted = reigns_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ReignRecord& a, const ReignRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.pid != b.pid) return a.pid < b.pid;
              return a.incarnation < b.incarnation;
            });
  std::ostringstream out;
  out << "reigns=[";
  for (const ReignRecord& record : sorted) {
    out << record.pid << ':' << record.incarnation << ':' << record.start
        << ':' << record.expiry << ':' << record.acted << ':' << record.end
        << ':' << to_string(record.reason) << ',';
  }
  out << "];acquired=" << stats_.leases_acquired
      << ";takeovers=" << stats_.takeovers << ";renewals=" << stats_.renewals
      << ";renew_failures=" << stats_.renew_failures
      << ";retries=" << stats_.retries << ";step_downs=" << stats_.step_downs
      << ";expirations=" << stats_.expirations
      << ";give_ups=" << stats_.give_ups << ";actions=" << stats_.actions
      << ';';
  return out.str();
}

}  // namespace bss::service
