// The registry of every BSS_* environment variable the tree reads.
//
// Determinism contract: environment knobs are the one input that does not
// travel through ExploreOptions or a command line, so they are the easiest
// place for a hidden result-affecting switch to hide.  This header makes the
// knob surface enumerable — every `std::getenv("BSS_…")` in src/, bench/,
// tools/ or examples/ must name a variable declared in the table below, and
// `tools/bss_lint` (rule `env-registry`) cross-checks the call sites against
// it.  Adding a knob means adding a row here, which is also where its
// documentation lives.
//
// The table is an X-macro so the same source of truth serves three readers:
// the linter (textual scan for `X(NAME, …)` rows), runtime enumeration
// (env_registry() below, used by tests and --help style listings), and
// humans (the doc string).
#pragma once

#include <cstddef>
#include <string_view>

namespace bss::env {

// X(name, doc) — name is the literal environment variable, doc is one line.
// Rows stay sorted by name so the runtime listing is canonical.
#define BSS_ENV_REGISTRY(X)                                                   \
  X(BSS_ARTIFACT_DIR,                                                         \
    "directory where failing tests dump minimized counterexample artifacts") \
  X(BSS_AUDIT, "force-enable the access-ledger auditor in every explore()")  \
  X(BSS_EXPLORE_FP,                                                          \
    "force-enable fingerprint pruning (read per explore() call)")            \
  X(BSS_EXPLORE_JOBS,                                                        \
    "default worker count for explore() calls that leave jobs unset")        \
  X(BSS_STATUS,                                                              \
    "default bss-status v1 heartbeat path when status_path is unset")        \
  X(BSS_STATUS_EVERY_MS,                                                     \
    "heartbeat cadence in milliseconds when status_every_ms is unset")

/// One registered knob: the variable's exact name and its documentation.
struct EnvVar {
  std::string_view name;
  std::string_view doc;
};

/// The registered knobs, in table (== sorted) order.
inline constexpr EnvVar kEnvRegistry[] = {
#define BSS_ENV_ROW(name, doc) {#name, doc},
    BSS_ENV_REGISTRY(BSS_ENV_ROW)
#undef BSS_ENV_ROW
};

inline constexpr std::size_t kEnvRegistrySize =
    sizeof(kEnvRegistry) / sizeof(kEnvRegistry[0]);

/// True iff `name` is a registered BSS_* environment variable.
constexpr bool is_registered_env(std::string_view name) {
  for (const EnvVar& var : kEnvRegistry) {
    if (var.name == name) return true;
  }
  return false;
}

}  // namespace bss::env
