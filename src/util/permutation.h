// Helpers for reasoning about compare&swap symbol sequences ("labels").
//
// A run of the election algorithm installs each non-initial symbol at most
// once, so the register's value sequence is a prefix of a permutation of the
// symbol set — exactly the "label" object of Afek & Stupp's Section 3.  These
// helpers validate such sequences and map between paths and slots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bss {

/// True iff `sequence` has no repeated elements and every element lies in
/// [low, high).
bool is_permutation_prefix(const std::vector<int>& sequence, int low, int high);

/// True iff `prefix` is a (possibly equal) prefix of `full`.
bool is_prefix_of(const std::vector<int>& prefix, const std::vector<int>& full);

/// Renders a symbol sequence like "⊥.2.0.1" (⊥ printed for symbol 0).
std::string label_to_string(const std::vector<int>& label);

/// All permutations of {0..width-1}, in Lehmer (factoradic) order.
/// Only sensible for small width; guarded at width <= 8.
std::vector<std::vector<int>> all_permutations(int width);

}  // namespace bss
