// Factorial number system codec.
//
// The election algorithm (src/core/first_value_tree.h) statically assigns
// each of the (k-1)! process slots a distinct permutation of the k-1
// non-initial compare&swap symbols.  The factorial number system gives the
// canonical bijection  slot index <-> permutation:
//
//   slot s in [0, d!) has digits  d_0 d_1 ... d_{d-1}  with  d_i in [0, d-i),
//   s = sum_i  d_i * (d-1-i)!
//
// and digit d_i selects the (d_i)-th smallest *still unused* element at
// position i (the Lehmer code of the permutation).
#pragma once

#include <cstdint>
#include <vector>

namespace bss {

/// Decodes `index` into its `width` factoradic digits (Lehmer code).
/// digit[i] is in [0, width - i).  Requires index < width!.
std::vector<int> factoradic_digits(std::uint64_t index, int width);

/// Inverse of factoradic_digits.
std::uint64_t factoradic_index(const std::vector<int>& digits);

/// Decodes `index` into the permutation of {0, ..., width-1} with that
/// Lehmer code.  Requires index < width!.
std::vector<int> nth_permutation(std::uint64_t index, int width);

/// Inverse of nth_permutation: the rank of `perm` among permutations of
/// {0, ..., perm.size()-1} in Lehmer order.
std::uint64_t permutation_rank(const std::vector<int>& perm);

}  // namespace bss
