#include "util/big_uint.h"

#include <algorithm>
#include <cmath>

#include "util/checked.h"

namespace bss {

namespace {
constexpr std::uint64_t kLimbBase = 1ULL << 32;
}  // namespace

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value & 0xffffffffULL));
    if (value >= kLimbBase) {
      limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
    }
  }
}

BigUint BigUint::from_decimal(const std::string& text) {
  expects(!text.empty(), "BigUint::from_decimal: empty string");
  BigUint result;
  const BigUint ten(10);
  for (const char c : text) {
    expects(c >= '0' && c <= '9', "BigUint::from_decimal: non-digit");
    result *= ten;
    result += BigUint(static_cast<std::uint64_t>(c - '0'));
  }
  return result;
}

BigUint BigUint::factorial(int n) {
  expects(n >= 0, "BigUint::factorial of negative");
  BigUint result(1);
  for (int i = 2; i <= n; ++i) result *= BigUint(static_cast<std::uint64_t>(i));
  return result;
}

BigUint BigUint::pow(std::uint64_t base, std::uint64_t exponent) {
  BigUint result(1);
  BigUint square(base);
  while (exponent > 0) {
    if (exponent & 1) result *= square;
    square *= square;
    exponent >>= 1;
  }
  return result;
}

BigUint& BigUint::operator+=(const BigUint& other) {
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry + limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(sum & 0xffffffffULL);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<std::uint32_t>(carry));
  return *this;
}

BigUint& BigUint::operator*=(const BigUint& other) {
  if (is_zero() || other.is_zero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<std::uint32_t> product(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      std::uint64_t cell = static_cast<std::uint64_t>(limbs_[i]) *
                               static_cast<std::uint64_t>(other.limbs_[j]) +
                           product[i + j] + carry;
      product[i + j] = static_cast<std::uint32_t>(cell & 0xffffffffULL);
      carry = cell >> 32;
    }
    std::size_t pos = i + other.limbs_.size();
    while (carry != 0) {
      std::uint64_t cell = product[pos] + carry;
      product[pos] = static_cast<std::uint32_t>(cell & 0xffffffffULL);
      carry = cell >> 32;
      ++pos;
    }
  }
  limbs_ = std::move(product);
  trim();
  return *this;
}

int BigUint::compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

int BigUint::decimal_digits() const {
  return checked_cast<int>(to_decimal().size());
}

std::string BigUint::to_decimal() const {
  if (is_zero()) return "0";
  std::vector<std::uint32_t> work(limbs_);
  std::string digits;
  while (!work.empty()) {
    // Divide `work` by 10 in place, collecting the remainder.
    std::uint64_t remainder = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const std::uint64_t cell = (remainder << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cell / 10);
      remainder = cell % 10;
    }
    digits.push_back(static_cast<char>('0' + remainder));
    while (!work.empty() && work.back() == 0) work.pop_back();
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigUint::to_double() const {
  double value = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = value * static_cast<double>(kLimbBase) + limbs_[i];
    if (std::isinf(value)) return value;
  }
  return value;
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

}  // namespace bss
