// Minimal arbitrary-precision unsigned integer.
//
// The paper's upper bound on the election capacity of a compare&swap-(k) is
// O(k^(k^2+3)); even for k = 4 that is 4^19 and for k = 6 it is 6^39, far past
// uint64.  The capacity tables in bench/ print these bounds exactly, so we
// need exact big integers.  Only the operations the capacity math needs are
// provided: add, multiply, pow, compare, decimal conversion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bss {

class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t value);

  static BigUint from_decimal(const std::string& text);
  static BigUint factorial(int n);
  /// base^exponent (0^0 == 1 by convention, as usual for combinatorics).
  static BigUint pow(std::uint64_t base, std::uint64_t exponent);

  BigUint& operator+=(const BigUint& other);
  BigUint& operator*=(const BigUint& other);
  friend BigUint operator+(BigUint lhs, const BigUint& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend BigUint operator*(BigUint lhs, const BigUint& rhs) {
    lhs *= rhs;
    return lhs;
  }

  /// Three-way comparison: negative/zero/positive like memcmp.
  int compare(const BigUint& other) const;
  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.compare(b) == 0;
  }
  friend bool operator<(const BigUint& a, const BigUint& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigUint& a, const BigUint& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigUint& a, const BigUint& b) {
    return a.compare(b) > 0;
  }

  bool is_zero() const { return limbs_.empty(); }
  /// Number of decimal digits (1 for zero).
  int decimal_digits() const;
  std::string to_decimal() const;
  /// Value as double (inf if too large); handy for ratio columns in tables.
  double to_double() const;

 private:
  void trim();

  // Little-endian base-2^32 limbs; empty means zero.
  std::vector<std::uint32_t> limbs_;
};

}  // namespace bss
