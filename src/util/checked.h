// Narrowing and invariant helpers in the spirit of the GSL (C++ Core
// Guidelines ES.46, I.6): fail loudly instead of silently truncating.
#pragma once

#include <cstdint>
#include <limits>
#include <source_location>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace bss {

/// Thrown when a runtime invariant of the library is violated.  Invariant
/// failures are programming errors (broken preconditions), so most callers
/// should let this propagate.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Checks a precondition/invariant; throws InvariantError with location info.
inline void expects(bool condition, const std::string& what,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvariantError(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": " + what);
  }
}

/// Cast that throws if the value does not round-trip (GSL narrow).
template <class To, class From>
To checked_cast(From value) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>);
  const To result = static_cast<To>(value);
  if (static_cast<From>(result) != value ||
      ((result < To{}) != (value < From{}))) {
    throw InvariantError("checked_cast: value does not fit target type");
  }
  return result;
}

/// Saturating factorial in uint64; throws when the exact value overflows.
inline std::uint64_t factorial_u64(int n) {
  expects(n >= 0, "factorial of negative number");
  expects(n <= 20, "factorial_u64 overflows past 20!");
  std::uint64_t result = 1;
  for (int i = 2; i <= n; ++i) result *= static_cast<std::uint64_t>(i);
  return result;
}

}  // namespace bss
