#include "util/factoradic.h"

#include <algorithm>

#include "util/checked.h"

namespace bss {

std::vector<int> factoradic_digits(std::uint64_t index, int width) {
  expects(width >= 0 && width <= 20, "factoradic width out of range");
  expects(index < factorial_u64(width), "factoradic index out of range");
  std::vector<int> digits(static_cast<std::size_t>(width));
  std::uint64_t rest = index;
  for (int i = 0; i < width; ++i) {
    const std::uint64_t weight = factorial_u64(width - 1 - i);
    digits[static_cast<std::size_t>(i)] = checked_cast<int>(rest / weight);
    rest %= weight;
  }
  return digits;
}

std::uint64_t factoradic_index(const std::vector<int>& digits) {
  const int width = checked_cast<int>(digits.size());
  std::uint64_t index = 0;
  for (int i = 0; i < width; ++i) {
    const int digit = digits[static_cast<std::size_t>(i)];
    expects(digit >= 0 && digit < width - i, "factoradic digit out of range");
    index += static_cast<std::uint64_t>(digit) * factorial_u64(width - 1 - i);
  }
  return index;
}

std::vector<int> nth_permutation(std::uint64_t index, int width) {
  const std::vector<int> digits = factoradic_digits(index, width);
  std::vector<int> pool(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) pool[static_cast<std::size_t>(i)] = i;
  std::vector<int> perm;
  perm.reserve(static_cast<std::size_t>(width));
  for (const int digit : digits) {
    perm.push_back(pool[static_cast<std::size_t>(digit)]);
    pool.erase(pool.begin() + digit);
  }
  return perm;
}

std::uint64_t permutation_rank(const std::vector<int>& perm) {
  const int width = checked_cast<int>(perm.size());
  std::vector<int> pool(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) pool[static_cast<std::size_t>(i)] = i;
  std::vector<int> digits;
  digits.reserve(static_cast<std::size_t>(width));
  for (const int element : perm) {
    const auto it = std::find(pool.begin(), pool.end(), element);
    expects(it != pool.end(), "permutation_rank: input is not a permutation");
    digits.push_back(checked_cast<int>(it - pool.begin()));
    pool.erase(it);
  }
  return factoradic_index(digits);
}

}  // namespace bss
