#include "util/permutation.h"

#include <algorithm>

#include "util/checked.h"
#include "util/factoradic.h"

namespace bss {

bool is_permutation_prefix(const std::vector<int>& sequence, int low,
                           int high) {
  std::vector<bool> seen(static_cast<std::size_t>(high - low), false);
  for (const int symbol : sequence) {
    if (symbol < low || symbol >= high) return false;
    const auto slot = static_cast<std::size_t>(symbol - low);
    if (seen[slot]) return false;
    seen[slot] = true;
  }
  return true;
}

bool is_prefix_of(const std::vector<int>& prefix,
                  const std::vector<int>& full) {
  if (prefix.size() > full.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), full.begin());
}

std::string label_to_string(const std::vector<int>& label) {
  std::string out;
  for (std::size_t i = 0; i < label.size(); ++i) {
    if (i > 0) out += '.';
    if (label[i] == 0) {
      out += "⊥";  // ⊥, the initial symbol
    } else {
      out += std::to_string(label[i]);
    }
  }
  return out;
}

std::vector<std::vector<int>> all_permutations(int width) {
  expects(width >= 0 && width <= 8, "all_permutations: width too large");
  const std::uint64_t count = factorial_u64(width);
  std::vector<std::vector<int>> result;
  result.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    result.push_back(nth_permutation(i, width));
  }
  return result;
}

}  // namespace bss
