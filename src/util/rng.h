// xoshiro256** — a small, fast, high-quality PRNG used for seeded-random
// schedulers and property-test sweeps.  Deterministic across platforms, which
// std::mt19937 distributions are not; every randomized test in this repo can
// be replayed from its printed seed.
#pragma once

#include <cstdint>

#include "util/checked.h"

namespace bss {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's rejection-free-ish method.
  std::uint64_t next_below(std::uint64_t bound) {
    expects(bound > 0, "Rng::next_below: bound must be positive");
    // Debiased modulo: retry loop with negligible expected iterations.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  int next_int(int bound) {
    return checked_cast<int>(next_below(static_cast<std::uint64_t>(bound)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace bss
