// Finite protocols for exhaustive checking.
//
// The paper's lower bound rests on impossibility results (FLP [9],
// Loui-Abu-Amara [18], the set-consensus impossibility [4,11,21]).  Those are
// theorems over ALL protocols and cannot be executed; what CAN be executed is
// the decision problem for a GIVEN finite protocol: "does this protocol solve
// (set-)consensus for n processes?"  This module defines the protocol
// interface; consensus_check.h explores every interleaving and either
// certifies the protocol or extracts a counterexample schedule — which for
// the classic attempts reproduces the textbook valency arguments as concrete
// executions.
//
// A protocol is a deterministic state machine per process:
//   * shared state: a small vector of ints (the protocol's registers/objects,
//     whose operation semantics live inside step());
//   * local state per process: a small vector of ints (pc + scratch);
//   * step(pid): ONE atomic shared-memory operation plus local computation,
//     possibly returning a decision.  Atomicity per step is exactly the
//     atomic-object model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace bss::check {

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string name() const = 0;
  virtual int process_count() const = 0;
  virtual int shared_words() const = 0;
  virtual int local_words() const = 0;

  virtual std::vector<int> initial_shared() const = 0;
  /// Local state of `pid` when its input value is `input`.
  virtual std::vector<int> initial_locals(int pid, int input) const = 0;

  /// Performs one atomic step of `pid`.  Returns the decision value if this
  /// step decides; a decided process takes no further steps.
  virtual std::optional<int> step(int pid, std::span<int> shared,
                                  std::span<int> locals) const = 0;
};

/// All input vectors over `domain` for `n` processes (|domain|^n of them) —
/// the exhaustive input sweep used for consensus checking.
std::vector<std::vector<int>> all_input_vectors(int n,
                                                std::span<const int> domain);

}  // namespace bss::check
