#include "checker/bivalence.h"

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "util/checked.h"

namespace bss::check {

namespace {

struct Node {
  std::vector<int> words;        // shared ++ locals ++ decisions(+2)
  std::vector<int> successors;   // node ids
  std::set<int> decided_values;  // decisions present in this very state
};

}  // namespace

std::string ValencyReport::summary() const {
  std::ostringstream out;
  out << total_states << " states: " << bivalent_states << " bivalent, "
      << univalent_states << " univalent, " << null_valent_states
      << " null-valent; initial "
      << (initial_bivalent ? "bivalent" : "univalent");
  if (critical_state >= 0) out << "; critical state #" << critical_state;
  return out.str();
}

ValencyReport analyze_valency(const Protocol& protocol,
                              const std::vector<int>& inputs,
                              std::uint64_t max_states) {
  const int n = protocol.process_count();
  const int shared_words = protocol.shared_words();
  const int local_words = protocol.local_words();
  expects(static_cast<int>(inputs.size()) == n, "input vector size mismatch");

  std::vector<Node> nodes;
  std::map<std::vector<int>, int> ids;

  const auto decision_of = [&](const std::vector<int>& words, int pid) {
    return words[static_cast<std::size_t>(shared_words + n * local_words +
                                          pid)];
  };

  const auto intern = [&](std::vector<int> words) {
    const auto [it, inserted] =
        ids.try_emplace(words, checked_cast<int>(nodes.size()));
    if (inserted) {
      expects(nodes.size() < max_states, "valency analysis state budget");
      Node node;
      node.words = std::move(words);
      for (int pid = 0; pid < n; ++pid) {
        const int d = decision_of(node.words, pid);
        if (d != 0) node.decided_values.insert(d - 2);
      }
      nodes.push_back(std::move(node));
    }
    return it->second;
  };

  std::vector<int> initial = protocol.initial_shared();
  for (int pid = 0; pid < n; ++pid) {
    const auto locals =
        protocol.initial_locals(pid, inputs[static_cast<std::size_t>(pid)]);
    initial.insert(initial.end(), locals.begin(), locals.end());
  }
  initial.insert(initial.end(), static_cast<std::size_t>(n), 0);
  const int root = intern(std::move(initial));

  // Forward exploration (BFS).
  for (std::size_t at = 0; at < nodes.size(); ++at) {
    for (int pid = 0; pid < n; ++pid) {
      if (decision_of(nodes[at].words, pid) != 0) continue;
      std::vector<int> next = nodes[at].words;
      const auto decision = protocol.step(
          pid, std::span<int>(next.data(), static_cast<std::size_t>(shared_words)),
          std::span<int>(next.data() + shared_words + pid * local_words,
                         static_cast<std::size_t>(local_words)));
      if (decision.has_value()) {
        next[static_cast<std::size_t>(shared_words + n * local_words + pid)] =
            *decision + 2;
      }
      const int child = intern(std::move(next));
      nodes[at].successors.push_back(child);
    }
  }

  // Backward fixpoint: valence(v) = decisions in v ∪ valence of successors.
  std::vector<std::set<int>> valence(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    valence[i] = nodes[i].decided_values;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = nodes.size(); i-- > 0;) {
      for (const int child : nodes[i].successors) {
        for (const int value : valence[static_cast<std::size_t>(child)]) {
          if (valence[i].insert(value).second) changed = true;
        }
      }
    }
  }

  ValencyReport report;
  report.total_states = nodes.size();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (valence[i].size() >= 2) {
      ++report.bivalent_states;
      // Critical: every successor is univalent (and there is a successor).
      bool all_children_univalent = !nodes[i].successors.empty();
      for (const int child : nodes[i].successors) {
        if (valence[static_cast<std::size_t>(child)].size() >= 2) {
          all_children_univalent = false;
          break;
        }
      }
      if (all_children_univalent && report.critical_state < 0) {
        report.critical_state = checked_cast<std::int64_t>(i);
      }
    } else if (valence[i].size() == 1) {
      ++report.univalent_states;
    } else {
      ++report.null_valent_states;
    }
  }
  report.initial_bivalent = valence[static_cast<std::size_t>(root)].size() >= 2;
  return report;
}

}  // namespace bss::check
