// Concrete finite protocols for the hierarchy table (T3).
//
// Each class is one protocol the exhaustive checker certifies or refutes:
//
//   RwWriteReadConsensus   — the natural read/write attempt; REFUTED for
//                            n = 2 (agreement counterexample): the machine-
//                            checked face of FLP/Loui-Abu-Amara.
//   RwSpinConsensus        — a "safe but waiting" read/write attempt;
//                            REFUTED (non-termination cycle): choosing
//                            safety costs wait-freedom.
//   TasConsensus2          — test&set + registers, n = 2; CERTIFIED.
//   TasSpinConsensus3      — the natural n = 3 extension with one test&set;
//                            REFUTED (losers must wait for the winner) —
//                            test&set has consensus number exactly 2.
//   CasConsensusK          — one compare&swap-(k) + registers, n processes
//                            claiming distinct symbols; CERTIFIED for
//                            n <= k-1.
//   CasOverloadedConsensus — same with n > k-1 (two processes share a
//                            symbol); REFUTED (agreement): bounded size
//                            biting, the paper's theme in miniature.
//   StickyConsensus        — one sticky register [20]; CERTIFIED for any n
//                            the checker can afford: why it tops the
//                            hierarchy.
#pragma once

#include "checker/protocol.h"

namespace bss::check {

class RwWriteReadConsensus final : public Protocol {
 public:
  std::string name() const override { return "rw-write-read"; }
  int process_count() const override { return 2; }
  int shared_words() const override { return 2; }  // value[2], -1 = empty
  int local_words() const override { return 3; }   // pc, input, seen
  std::vector<int> initial_shared() const override { return {-1, -1}; }
  std::vector<int> initial_locals(int pid, int input) const override;
  std::optional<int> step(int pid, std::span<int> shared,
                          std::span<int> locals) const override;
};

class RwSpinConsensus final : public Protocol {
 public:
  std::string name() const override { return "rw-spin"; }
  int process_count() const override { return 2; }
  int shared_words() const override { return 3; }  // value[2], committed
  int local_words() const override { return 3; }
  std::vector<int> initial_shared() const override { return {-1, -1, -1}; }
  std::vector<int> initial_locals(int pid, int input) const override;
  std::optional<int> step(int pid, std::span<int> shared,
                          std::span<int> locals) const override;
};

class TasConsensus2 final : public Protocol {
 public:
  std::string name() const override { return "tas-2"; }
  int process_count() const override { return 2; }
  int shared_words() const override { return 3; }  // prefer[2], tas bit
  int local_words() const override { return 3; }
  std::vector<int> initial_shared() const override { return {-1, -1, 0}; }
  std::vector<int> initial_locals(int pid, int input) const override;
  std::optional<int> step(int pid, std::span<int> shared,
                          std::span<int> locals) const override;
};

class TasSpinConsensus3 final : public Protocol {
 public:
  std::string name() const override { return "tas-spin-3"; }
  int process_count() const override { return 3; }
  int shared_words() const override { return 5; }  // prefer[3], tas, winner
  int local_words() const override { return 3; }
  std::vector<int> initial_shared() const override {
    return {-1, -1, -1, 0, -1};
  }
  std::vector<int> initial_locals(int pid, int input) const override;
  std::optional<int> step(int pid, std::span<int> shared,
                          std::span<int> locals) const override;
};

/// n processes, one compare&swap-(k): process pid claims symbol
/// (pid % (k-1)) + 1.  Correct iff the symbols are distinct, i.e. n <= k-1.
class CasConsensusK final : public Protocol {
 public:
  CasConsensusK(int n, int k);
  std::string name() const override;
  int process_count() const override { return n_; }
  int shared_words() const override { return n_ + 1; }  // prefer[n], cas
  int local_words() const override { return 3; }
  std::vector<int> initial_shared() const override;
  std::vector<int> initial_locals(int pid, int input) const override;
  std::optional<int> step(int pid, std::span<int> shared,
                          std::span<int> locals) const override;

 private:
  int symbol_of(int pid) const { return pid % (k_ - 1) + 1; }
  int n_;
  int k_;
};

/// n processes, one swap register: everyone swaps in its marker; whoever got
/// the initial value back won.  Correct for n = 2 (the loser's swap returns
/// the winner's marker); for n >= 3 a late process sees the PREVIOUS
/// swapper's marker, not the first's — consensus number 2, like test&set.
class SwapConsensusN final : public Protocol {
 public:
  explicit SwapConsensusN(int n) : n_(n) {}
  std::string name() const override {
    return "swap-n" + std::to_string(n_);
  }
  int process_count() const override { return n_; }
  int shared_words() const override { return n_ + 1; }  // prefer[n], swap
  int local_words() const override { return 3; }
  std::vector<int> initial_shared() const override;
  std::vector<int> initial_locals(int pid, int input) const override;
  std::optional<int> step(int pid, std::span<int> shared,
                          std::span<int> locals) const override;

 private:
  int n_;
};

class StickyConsensus final : public Protocol {
 public:
  explicit StickyConsensus(int n) : n_(n) {}
  std::string name() const override { return "sticky"; }
  int process_count() const override { return n_; }
  int shared_words() const override { return 1; }  // the sticky register
  int local_words() const override { return 2; }   // pc, input
  std::vector<int> initial_shared() const override { return {-1}; }
  std::vector<int> initial_locals(int pid, int input) const override;
  std::optional<int> step(int pid, std::span<int> shared,
                          std::span<int> locals) const override;

 private:
  int n_;
};

}  // namespace bss::check
