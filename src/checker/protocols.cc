#include "checker/protocols.h"

#include "util/checked.h"

namespace bss::check {

namespace {
// Local-word layout used by every protocol here: locals[0] = pc,
// locals[1] = input, locals[2] = scratch.
enum : int { kPc = 0, kInput = 1, kScratch = 2 };
}  // namespace

// ------------------------------------------------------- RwWriteReadConsensus

std::vector<int> RwWriteReadConsensus::initial_locals(int, int input) const {
  return {0, input, 0};
}

std::optional<int> RwWriteReadConsensus::step(int pid, std::span<int> shared,
                                              std::span<int> locals) const {
  // pc 0: write value[pid] := input.
  // pc 1: read value[1-pid]; decide my input if empty, else min of both.
  switch (locals[kPc]) {
    case 0:
      shared[static_cast<std::size_t>(pid)] = locals[kInput];
      locals[kPc] = 1;
      return std::nullopt;
    default: {
      const int other = shared[static_cast<std::size_t>(1 - pid)];
      if (other == -1) return locals[kInput];
      return std::min(locals[kInput], other);
    }
  }
}

// ------------------------------------------------------------ RwSpinConsensus

std::vector<int> RwSpinConsensus::initial_locals(int, int input) const {
  return {0, input, 0};
}

std::optional<int> RwSpinConsensus::step(int pid, std::span<int> shared,
                                         std::span<int> locals) const {
  // pc 0: write value[pid].
  // pc 1: read committed; if set, decide it.
  // pc 2: read value[1-pid]; empty -> pc 3, occupied -> back to pc 1.
  // pc 3: write committed := input and decide it.
  // Safe (agreement always holds) but NOT wait-free: if both processes have
  // written, each spins pc 1 <-> pc 2 waiting for a commit that only the
  // other could... also never make.  The checker exhibits the livelock.
  switch (locals[kPc]) {
    case 0:
      shared[static_cast<std::size_t>(pid)] = locals[kInput];
      locals[kPc] = 1;
      return std::nullopt;
    case 1: {
      const int committed = shared[2];
      if (committed != -1) return committed;
      locals[kPc] = 2;
      return std::nullopt;
    }
    case 2: {
      const int other = shared[static_cast<std::size_t>(1 - pid)];
      locals[kPc] = other == -1 ? 3 : 1;
      return std::nullopt;
    }
    default:
      shared[2] = locals[kInput];
      return locals[kInput];
  }
}

// -------------------------------------------------------------- TasConsensus2

std::vector<int> TasConsensus2::initial_locals(int, int input) const {
  return {0, input, 0};
}

std::optional<int> TasConsensus2::step(int pid, std::span<int> shared,
                                       std::span<int> locals) const {
  // pc 0: write prefer[pid].
  // pc 1: test&set; winner decides own input.
  // pc 2: loser reads prefer[1-pid] and decides it.
  switch (locals[kPc]) {
    case 0:
      shared[static_cast<std::size_t>(pid)] = locals[kInput];
      locals[kPc] = 1;
      return std::nullopt;
    case 1: {
      const int previous = shared[2];
      shared[2] = 1;
      if (previous == 0) return locals[kInput];
      locals[kPc] = 2;
      return std::nullopt;
    }
    default:
      return shared[static_cast<std::size_t>(1 - pid)];
  }
}

// --------------------------------------------------------- TasSpinConsensus3

std::vector<int> TasSpinConsensus3::initial_locals(int, int input) const {
  return {0, input, 0};
}

std::optional<int> TasSpinConsensus3::step(int pid, std::span<int> shared,
                                           std::span<int> locals) const {
  // shared: prefer[0..2], tas at [3], winner-announce at [4].
  // pc 0: write prefer[pid].
  // pc 1: test&set; winner goes to announce, losers to the wait loop.
  // pc 3: winner writes its id and decides.
  // pc 2: loser reads the announcement; with three processes a loser cannot
  //       deduce the winner from losing alone, so it must wait — and the
  //       checker finds the livelock (park the winner between its test&set
  //       and its announcement, schedule a loser forever).
  switch (locals[kPc]) {
    case 0:
      shared[static_cast<std::size_t>(pid)] = locals[kInput];
      locals[kPc] = 1;
      return std::nullopt;
    case 1: {
      const int previous = shared[3];
      shared[3] = 1;
      locals[kPc] = previous == 0 ? 3 : 2;
      return std::nullopt;
    }
    case 3:
      shared[4] = pid;
      return locals[kInput];
    default: {
      const int winner = shared[4];
      if (winner != -1) return shared[static_cast<std::size_t>(winner)];
      return std::nullopt;  // spin at pc 2
    }
  }
}

// --------------------------------------------------------------- CasConsensusK

CasConsensusK::CasConsensusK(int n, int k) : n_(n), k_(k) {
  expects(n >= 1, "CasConsensusK needs processes");
  expects(k >= 2, "compare&swap-(k) needs k >= 2");
}

std::string CasConsensusK::name() const {
  return "cas-" + std::to_string(k_) + "-n" + std::to_string(n_);
}

std::vector<int> CasConsensusK::initial_shared() const {
  std::vector<int> shared(static_cast<std::size_t>(n_ + 1), -1);
  shared[static_cast<std::size_t>(n_)] = 0;  // the register holds ⊥
  return shared;
}

std::vector<int> CasConsensusK::initial_locals(int, int input) const {
  return {0, input, 0};
}

std::optional<int> CasConsensusK::step(int pid, std::span<int> shared,
                                       std::span<int> locals) const {
  // pc 0: write prefer[pid].
  // pc 1: c&s(⊥ -> my symbol); read result.
  // pc 2: decide prefer of whoever owns the winning symbol (smallest pid
  //       with that symbol that has announced).
  switch (locals[kPc]) {
    case 0:
      shared[static_cast<std::size_t>(pid)] = locals[kInput];
      locals[kPc] = 1;
      return std::nullopt;
    case 1: {
      int& reg = shared[static_cast<std::size_t>(n_)];
      const int previous = reg;
      if (previous == 0) reg = symbol_of(pid);
      locals[kScratch] = previous == 0 ? symbol_of(pid) : previous;
      locals[kPc] = 2;
      return std::nullopt;
    }
    default: {
      const int winning_symbol = locals[kScratch];
      for (int p = 0; p < n_; ++p) {
        if (symbol_of(p) == winning_symbol &&
            shared[static_cast<std::size_t>(p)] != -1) {
          return shared[static_cast<std::size_t>(p)];
        }
      }
      return std::nullopt;  // cannot happen when symbols are distinct
    }
  }
}

// --------------------------------------------------------------- SwapConsensusN

std::vector<int> SwapConsensusN::initial_shared() const {
  std::vector<int> shared(static_cast<std::size_t>(n_ + 1), -1);
  shared[static_cast<std::size_t>(n_)] = 0;  // the swap register
  return shared;
}

std::vector<int> SwapConsensusN::initial_locals(int, int input) const {
  return {0, input, 0};
}

std::optional<int> SwapConsensusN::step(int pid, std::span<int> shared,
                                        std::span<int> locals) const {
  // pc 0: write prefer[pid].
  // pc 1: swap in marker pid+1; 0 back -> I won; else decide the marker's
  //       owner's preference.
  switch (locals[kPc]) {
    case 0:
      shared[static_cast<std::size_t>(pid)] = locals[kInput];
      locals[kPc] = 1;
      return std::nullopt;
    default: {
      int& reg = shared[static_cast<std::size_t>(n_)];
      const int previous = reg;
      reg = pid + 1;
      if (previous == 0) return locals[kInput];
      return shared[static_cast<std::size_t>(previous - 1)];
    }
  }
}

// -------------------------------------------------------------- StickyConsensus

std::vector<int> StickyConsensus::initial_locals(int, int input) const {
  return {0, input};
}

std::optional<int> StickyConsensus::step(int, std::span<int> shared,
                                         std::span<int> locals) const {
  int& sticky = shared[0];
  if (sticky == -1) sticky = locals[kInput];
  return sticky;
}

}  // namespace bss::check
