#include "checker/consensus_check.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

#include "util/checked.h"

namespace bss::check {

std::vector<std::vector<int>> all_input_vectors(int n,
                                                std::span<const int> domain) {
  std::vector<std::vector<int>> vectors{{}};
  for (int position = 0; position < n; ++position) {
    std::vector<std::vector<int>> extended;
    extended.reserve(vectors.size() * domain.size());
    for (const auto& vector : vectors) {
      for (const int value : domain) {
        auto copy = vector;
        copy.push_back(value);
        extended.push_back(std::move(copy));
      }
    }
    vectors = std::move(extended);
  }
  return vectors;
}

namespace {

// Full system configuration: shared words, all locals, per-process decision.
struct Config {
  std::vector<int> words;  // shared ++ locals ++ decisions(+2, 0 = undecided)

  bool operator==(const Config& other) const { return words == other.words; }
};

struct ConfigHash {
  std::size_t operator()(const Config& config) const {
    std::size_t h = 1469598103934665603ULL;
    for (const int word : config.words) {
      h ^= static_cast<std::size_t>(word) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

class Explorer {
 public:
  Explorer(const Protocol& protocol, const CheckOptions& options)
      : protocol_(protocol),
        options_(options),
        n_(protocol.process_count()),
        shared_words_(protocol.shared_words()),
        local_words_(protocol.local_words()) {}

  CheckResult explore(const std::vector<int>& inputs) {
    result_ = CheckResult{};
    result_.inputs = inputs;

    Config initial;
    initial.words = protocol_.initial_shared();
    expects(static_cast<int>(initial.words.size()) == shared_words_,
            "protocol initial_shared size mismatch");
    for (int pid = 0; pid < n_; ++pid) {
      const auto locals = protocol_.initial_locals(
          pid, inputs[static_cast<std::size_t>(pid)]);
      expects(static_cast<int>(locals.size()) == local_words_,
              "protocol initial_locals size mismatch");
      initial.words.insert(initial.words.end(), locals.begin(), locals.end());
    }
    initial.words.insert(initial.words.end(), static_cast<std::size_t>(n_), 0);

    // Iterative DFS building the reachable graph; parent pointers give the
    // counterexample schedule.
    ids_.clear();
    configs_.clear();
    edges_.clear();
    parent_.clear();
    const int root = intern(initial, -1, -1);
    std::vector<int> stack{root};
    std::vector<bool> expanded;
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      if (expanded.size() <= static_cast<std::size_t>(node)) {
        expanded.resize(static_cast<std::size_t>(node) + 1, false);
      }
      if (expanded[static_cast<std::size_t>(node)]) continue;
      expanded[static_cast<std::size_t>(node)] = true;

      const Config config = configs_[static_cast<std::size_t>(node)];  // copy
      bool any_enabled = false;
      for (int pid = 0; pid < n_; ++pid) {
        if (decision_of(config, pid) != 0) continue;  // decided: halted
        any_enabled = true;
        Config next = config;
        const auto decision = protocol_.step(
            pid,
            std::span<int>(next.words.data(), static_cast<std::size_t>(shared_words_)),
            std::span<int>(
                next.words.data() + shared_words_ + pid * local_words_,
                static_cast<std::size_t>(local_words_)));
        if (decision.has_value()) {
          set_decision(next, pid, *decision);
          if (!check_decision_invariants(next, node, pid)) return result_;
        }
        const int next_id = intern(next, node, pid);
        if (next_id < 0) return result_;  // budget blown
        edges_.push_back({node, pid, next_id});
        if (static_cast<std::size_t>(next_id) >= expanded.size() ||
            !expanded[static_cast<std::size_t>(next_id)]) {
          stack.push_back(next_id);
        }
      }
      if (!any_enabled) {
        // Everyone decided in this configuration: fine.
        continue;
      }
    }

    // Stuck check: an undecided process with... (a deterministic protocol
    // always has a step; stuck cannot happen with this interface).  Check
    // wait-freedom: per pid, a cycle within undecided(pid) states containing
    // a pid edge.
    for (int pid = 0; pid < n_; ++pid) {
      if (find_livelock(pid)) return result_;
    }

    result_.solves = true;
    result_.states_explored = configs_.size();
    return result_;
  }

 private:
  struct Edge {
    int from;
    int pid;
    int to;
  };

  int decision_of(const Config& config, int pid) const {
    return config.words[static_cast<std::size_t>(shared_words_ +
                                                 n_ * local_words_ + pid)];
  }
  void set_decision(Config& config, int pid, int value) const {
    // Stored with +2 so that any int decision (including -1, 0) fits with 0
    // meaning "undecided".  Decisions are compared through this encoding.
    config.words[static_cast<std::size_t>(shared_words_ + n_ * local_words_ +
                                          pid)] = value + 2;
  }

  // Returns -1 if the state budget is exhausted.
  int intern(const Config& config, int parent, int pid) {
    const auto [it, inserted] =
        ids_.try_emplace(config, checked_cast<int>(configs_.size()));
    if (inserted) {
      if (configs_.size() >= options_.max_states) {
        result_.violation = Violation::kStateBudget;
        result_.detail = "state budget exhausted (inconclusive)";
        result_.states_explored = configs_.size();
        return -1;
      }
      configs_.push_back(config);
      parent_.push_back({parent, pid});
      return it->second;
    }
    return it->second;
  }

  std::vector<int> schedule_to(int node) const {
    std::vector<int> schedule;
    for (int at = node; at >= 0 && parent_[static_cast<std::size_t>(at)].first >= -1;) {
      const auto [prev, pid] = parent_[static_cast<std::size_t>(at)];
      if (pid >= 0) schedule.push_back(pid);
      if (prev < 0) break;
      at = prev;
    }
    std::reverse(schedule.begin(), schedule.end());
    return schedule;
  }

  bool check_decision_invariants(const Config& config, int parent, int pid) {
    // Validity.
    const int decided = decision_of(config, pid) - 2;
    bool proposed = false;
    for (const int input : result_.inputs) proposed = proposed || input == decided;
    if (!proposed) {
      result_.violation = Violation::kValidity;
      std::ostringstream out;
      out << "p" << pid << " decided " << decided << ", proposed by nobody";
      result_.detail = out.str();
      result_.schedule = schedule_to(parent);
      result_.schedule.push_back(pid);
      result_.states_explored = configs_.size();
      return false;
    }
    // Agreement (l-set): count distinct decisions in this configuration.
    std::set<int> decisions;
    for (int p = 0; p < n_; ++p) {
      const int d = decision_of(config, p);
      if (d != 0) decisions.insert(d);
    }
    if (checked_cast<int>(decisions.size()) > options_.agreement) {
      result_.violation = Violation::kAgreement;
      std::ostringstream out;
      out << decisions.size() << " distinct decisions (allowed "
          << options_.agreement << "):";
      for (const int d : decisions) out << " " << d - 2;
      result_.detail = out.str();
      result_.schedule = schedule_to(parent);
      result_.schedule.push_back(pid);
      result_.states_explored = configs_.size();
      return false;
    }
    return true;
  }

  // A cycle among states where `pid` is undecided, containing a pid-edge:
  // pid can take infinitely many steps without deciding.
  bool find_livelock(int pid) {
    // Adjacency over the restricted subgraph.
    const int n_nodes = checked_cast<int>(configs_.size());
    std::vector<std::vector<std::pair<int, bool>>> adj(
        static_cast<std::size_t>(n_nodes));
    for (const Edge& edge : edges_) {
      if (decision_of(configs_[static_cast<std::size_t>(edge.from)], pid) != 0 ||
          decision_of(configs_[static_cast<std::size_t>(edge.to)], pid) != 0) {
        continue;
      }
      adj[static_cast<std::size_t>(edge.from)].push_back(
          {edge.to, edge.pid == pid});
    }
    // Tarjan-free approach: find SCCs via Kosaraju-lite (iterative), then a
    // qualifying SCC is one containing a pid-edge inside it.
    // For the modest graphs here, a simple DFS-based SCC (Tarjan iterative)
    // is plenty.
    std::vector<int> index(static_cast<std::size_t>(n_nodes), -1);
    std::vector<int> low(static_cast<std::size_t>(n_nodes), 0);
    std::vector<int> comp(static_cast<std::size_t>(n_nodes), -1);
    std::vector<bool> on_stack(static_cast<std::size_t>(n_nodes), false);
    std::vector<int> tarjan_stack;
    int next_index = 0;
    int components = 0;

    struct Frame {
      int node;
      std::size_t edge;
    };
    for (int start = 0; start < n_nodes; ++start) {
      if (index[static_cast<std::size_t>(start)] != -1) continue;
      std::vector<Frame> frames{{start, 0}};
      index[static_cast<std::size_t>(start)] = low[static_cast<std::size_t>(start)] = next_index++;
      tarjan_stack.push_back(start);
      on_stack[static_cast<std::size_t>(start)] = true;
      while (!frames.empty()) {
        Frame& frame = frames.back();
        const auto node = static_cast<std::size_t>(frame.node);
        if (frame.edge < adj[node].size()) {
          const int child = adj[node][frame.edge++].first;
          const auto child_idx = static_cast<std::size_t>(child);
          if (index[child_idx] == -1) {
            index[child_idx] = low[child_idx] = next_index++;
            tarjan_stack.push_back(child);
            on_stack[child_idx] = true;
            frames.push_back({child, 0});
          } else if (on_stack[child_idx]) {
            low[node] = std::min(low[node], index[child_idx]);
          }
        } else {
          if (low[node] == index[node]) {
            for (;;) {
              const int member = tarjan_stack.back();
              tarjan_stack.pop_back();
              on_stack[static_cast<std::size_t>(member)] = false;
              comp[static_cast<std::size_t>(member)] = components;
              if (member == frame.node) break;
            }
            ++components;
          }
          const int done = frame.node;
          frames.pop_back();
          if (!frames.empty()) {
            const auto parent_node = static_cast<std::size_t>(frames.back().node);
            low[parent_node] =
                std::min(low[parent_node], low[static_cast<std::size_t>(done)]);
          }
        }
      }
    }
    // Qualifying: an intra-SCC edge (u->v, comp equal) that either is a
    // pid-edge, or the SCC is non-trivial and contains a pid-edge.
    for (int node = 0; node < n_nodes; ++node) {
      for (const auto& [to, is_pid] : adj[static_cast<std::size_t>(node)]) {
        if (!is_pid) continue;
        const bool same_comp = comp[static_cast<std::size_t>(node)] ==
                               comp[static_cast<std::size_t>(to)];
        const bool self_loop = to == node;
        if (same_comp || self_loop) {
          result_.violation = Violation::kNonTermination;
          std::ostringstream out;
          out << "p" << pid
              << " can take infinitely many steps without deciding "
                 "(cycle through state "
              << node << ")";
          result_.detail = out.str();
          result_.schedule = schedule_to(node);
          result_.schedule.push_back(pid);
          result_.states_explored = configs_.size();
          return true;
        }
      }
    }
    return false;
  }

  const Protocol& protocol_;
  CheckOptions options_;
  int n_;
  int shared_words_;
  int local_words_;

  CheckResult result_;
  std::unordered_map<Config, int, ConfigHash> ids_;
  std::vector<Config> configs_;
  std::vector<Edge> edges_;
  std::vector<std::pair<int, int>> parent_;  // (parent node, pid)
};

}  // namespace

CheckResult check_consensus(const Protocol& protocol,
                            const std::vector<std::vector<int>>& input_vectors,
                            const CheckOptions& options) {
  expects(!input_vectors.empty(), "no input vectors to check");
  CheckResult last;
  std::uint64_t total_states = 0;
  for (const auto& inputs : input_vectors) {
    expects(static_cast<int>(inputs.size()) == protocol.process_count(),
            "input vector size mismatch");
    Explorer explorer(protocol, options);
    last = explorer.explore(inputs);
    total_states += last.states_explored;
    if (!last.solves) {
      last.states_explored = total_states;
      return last;
    }
  }
  last.states_explored = total_states;
  return last;
}

}  // namespace bss::check
