// Exhaustive (set-)consensus checking over all interleavings.
//
// For a finite Protocol and a set of input vectors, explores the full
// reachable state graph (every scheduler choice at every state) and decides:
//   * Agreement: at most `agreement` distinct decisions ever coexist
//     (agreement = 1 is consensus, l > 1 is l-set consensus);
//   * Validity: every decision is some process's input;
//   * Wait-freedom: no reachable cycle lets an undecided process take
//     infinitely many steps without deciding, and no undecided process is
//     ever stuck without an enabled step.
// A violation comes with a concrete schedule (the sequence of pids) that
// exhibits it — the mechanized form of the valency arguments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checker/protocol.h"

namespace bss::check {

enum class Violation {
  kNone,
  kAgreement,       ///< too many distinct decisions
  kValidity,        ///< decided a value nobody proposed
  kNonTermination,  ///< an undecided process can step forever
  kStuck,           ///< an undecided process has no step (protocol bug)
  kStateBudget,     ///< exploration exceeded max_states (inconclusive)
};

struct CheckResult {
  bool solves = false;
  Violation violation = Violation::kNone;
  std::string detail;          ///< human-readable description
  std::vector<int> schedule;   ///< pid sequence reaching the violation
  std::vector<int> inputs;     ///< the input vector it happened under
  std::uint64_t states_explored = 0;
};

struct CheckOptions {
  int agreement = 1;  ///< l of l-set consensus
  std::uint64_t max_states = 5'000'000;
};

/// Checks the protocol against every input vector; stops at the first
/// violation.  `solves` is true iff no vector produces one.
CheckResult check_consensus(const Protocol& protocol,
                            const std::vector<std::vector<int>>& input_vectors,
                            const CheckOptions& options = {});

}  // namespace bss::check
