// Valency analysis — the FLP/Loui-Abu-Amara argument, mechanized for a
// concrete protocol.
//
// For a finite protocol and one input vector, build the full reachable state
// graph and classify each state by its *valence*: the set of values that some
// execution from that state ever decides.  A state with |valence| >= 2 is
// bivalent.  FLP's structure becomes measurable output:
//   * a correct consensus protocol for these inputs has NO reachable bivalent
//     state from which every successor is bivalent forever (it must commit);
//   * the classic read/write attempts show an initial bivalent state and
//     bivalence-preserving schedules — the non-termination or disagreement
//     the checker reports, seen through the valency lens.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checker/protocol.h"

namespace bss::check {

struct ValencyReport {
  std::uint64_t total_states = 0;
  std::uint64_t bivalent_states = 0;
  std::uint64_t univalent_states = 0;
  std::uint64_t null_valent_states = 0;  ///< no decision reachable (bug)
  bool initial_bivalent = false;
  /// A critical state: bivalent, but every enabled step leads to a
  /// univalent state.  Correct protocols commit through these; index is -1
  /// if none exists.
  std::int64_t critical_state = -1;
  std::string summary() const;
};

ValencyReport analyze_valency(const Protocol& protocol,
                              const std::vector<int>& inputs,
                              std::uint64_t max_states = 2'000'000);

}  // namespace bss::check
