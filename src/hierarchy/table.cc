#include "hierarchy/table.h"

#include <sstream>

#include "checker/consensus_check.h"
#include "checker/protocols.h"
#include "util/checked.h"

namespace bss::hierarchy {

namespace {

const std::vector<int> kBinary{0, 1};

bool solves(const check::Protocol& protocol, int n) {
  return check::check_consensus(protocol,
                                check::all_input_vectors(n, kBinary))
      .solves;
}

std::string violation_name(check::Violation violation) {
  switch (violation) {
    case check::Violation::kAgreement:
      return "agreement";
    case check::Violation::kValidity:
      return "validity";
    case check::Violation::kNonTermination:
      return "wait-freedom";
    case check::Violation::kStuck:
      return "stuck";
    case check::Violation::kStateBudget:
      return "budget";
    case check::Violation::kNone:
      return "none";
  }
  return "?";
}

std::string refutation(const check::Protocol& protocol, int n) {
  const auto result = check::check_consensus(
      protocol, check::all_input_vectors(n, kBinary));
  expects(!result.solves, "expected the checker to refute " + protocol.name());
  return protocol.name() + " fails " + violation_name(result.violation) +
         " at n=" + std::to_string(n);
}

}  // namespace

std::vector<HierarchyRow> build_hierarchy_table() {
  std::vector<HierarchyRow> rows;

  {
    HierarchyRow row;
    row.object = "read/write registers";
    row.consensus_number = "1";
    row.certified = "trivial n=1";
    check::RwWriteReadConsensus write_read;
    check::RwSpinConsensus spin;
    row.refuted = refutation(write_read, 2) + "; " + refutation(spin, 2);
    rows.push_back(std::move(row));
  }
  {
    HierarchyRow row;
    row.object = "test&set";
    row.consensus_number = "2";
    check::TasConsensus2 tas2;
    expects(solves(tas2, 2), "tas-2 must be certified");
    row.certified = "tas-2 certified at n=2";
    check::TasSpinConsensus3 tas3;
    row.refuted = refutation(tas3, 3);
    rows.push_back(std::move(row));
  }
  {
    HierarchyRow row;
    row.object = "swap register";
    row.consensus_number = "2";
    check::SwapConsensusN swap2(2);
    expects(solves(swap2, 2), "swap-2 must be certified");
    row.certified = "swap-n2 certified at n=2";
    check::SwapConsensusN swap3(3);
    row.refuted = refutation(swap3, 3);
    rows.push_back(std::move(row));
  }
  {
    HierarchyRow row;
    row.object = "compare&swap-(k), one object";
    row.consensus_number = "k-1 (without r/w helpers beyond announce)";
    std::ostringstream certified;
    for (const int k : {3, 4, 5}) {
      check::CasConsensusK cas(k - 1, k);
      expects(solves(cas, k - 1), "cas boundary certification failed");
      certified << "n=" << k - 1 << " with k=" << k << "; ";
    }
    row.certified = certified.str();
    check::CasConsensusK overloaded(4, 4);
    row.refuted = refutation(overloaded, 4);
    rows.push_back(std::move(row));
  }
  {
    HierarchyRow row;
    row.object = "compare&swap (unbounded)";
    row.consensus_number = "inf";
    std::ostringstream certified;
    for (int n = 2; n <= 4; ++n) {
      check::CasConsensusK cas(n, n + 1);
      expects(solves(cas, n), "unbounded-cas certification failed");
      certified << "n=" << n << "; ";
    }
    certified << "(k grows with n: the paper's point)";
    row.certified = certified.str();
    row.refuted = "-";
    rows.push_back(std::move(row));
  }
  {
    HierarchyRow row;
    row.object = "sticky register";
    row.consensus_number = "inf";
    std::ostringstream certified;
    for (int n = 2; n <= 4; ++n) {
      check::StickyConsensus sticky(n);
      expects(solves(sticky, n), "sticky certification failed");
      certified << "n=" << n << "; ";
    }
    row.certified = certified.str();
    row.refuted = "-";
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string render_hierarchy_table(const std::vector<HierarchyRow>& rows) {
  std::ostringstream out;
  out << "object                              | consensus # | certified / refuted\n";
  out << "------------------------------------+-------------+--------------------\n";
  for (const auto& row : rows) {
    std::string object = row.object;
    object.resize(36, ' ');
    std::string number = row.consensus_number;
    if (number.size() < 11) number.resize(11, ' ');
    out << object << "| " << number << " | " << row.certified << "\n";
    if (row.refuted != "-") {
      out << std::string(36, ' ') << "| " << std::string(11, ' ') << " | "
          << row.refuted << "\n";
    }
  }
  return out.str();
}

}  // namespace bss::hierarchy
