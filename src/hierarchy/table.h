// The hierarchy table (experiment T3): Herlihy's consensus numbers, measured.
//
// Each row pairs an object type with what the exhaustive checker establishes
// about it on this machine — certified protocols below the consensus number,
// refuted natural attempts above it — plus the paper-refinement column: what
// a BOUNDED instance of the object can do (the compare&swap-(k) boundary at
// n = k-1 without read/write helpers, (k-1)! with them).
#pragma once

#include <string>
#include <vector>

namespace bss::hierarchy {

struct HierarchyRow {
  std::string object;
  std::string consensus_number;  ///< "1", "2", "inf", ...
  std::string certified;         ///< what the checker verified
  std::string refuted;           ///< what the checker refuted
};

/// Runs the checker over the protocol zoo and assembles the table.  Takes a
/// few milliseconds; every cell is recomputed, not hardcoded.
std::vector<HierarchyRow> build_hierarchy_table();

/// Renders the table as aligned text for benches and examples.
std::string render_hierarchy_table(const std::vector<HierarchyRow>& rows);

}  // namespace bss::hierarchy
