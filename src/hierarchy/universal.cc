#include "hierarchy/universal.h"

#include "util/checked.h"

namespace bss::hierarchy {

UniversalObject::UniversalObject(std::string name, SequentialSpec spec, int n,
                                 int max_ops)
    : name_(std::move(name)), spec_(std::move(spec)), n_(n), max_ops_(max_ops) {
  expects(n >= 1, "universal object needs processes");
  expects(max_ops >= 1, "universal object needs capacity");
  announce_.reserve(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    announce_.emplace_back(name_ + ".announce[" + std::to_string(pid) + "]",
                           pid, std::pair<std::int64_t, std::int64_t>{0, 0});
  }
  cells_.reserve(static_cast<std::size_t>(max_ops));
  for (int cell = 0; cell < max_ops; ++cell) {
    cells_.emplace_back(name_ + ".cell[" + std::to_string(cell) + "]");
  }
  cursors_.resize(static_cast<std::size_t>(n));
  for (auto& cursor : cursors_) {
    cursor.state = spec_.initial_state;
    cursor.applied_seq.assign(static_cast<std::size_t>(n), 0);
  }
}

std::int64_t UniversalObject::encode(const Placement& placement, int n) {
  // (seq * n + pid) in the high 31 bits, op in the low 32.  Sticky registers
  // require non-negative proposals.
  const std::int64_t slot =
      placement.seq * n + placement.pid;  // seq >= 1, so slot >= n > 0
  return (slot << 32) | (placement.op & 0xffffffffLL);
}

UniversalObject::Placement UniversalObject::decode(std::int64_t value, int n) {
  const std::int64_t slot = value >> 32;
  Placement placement;
  placement.pid = checked_cast<int>(slot % n);
  placement.seq = slot / n;
  placement.op = value & 0xffffffffLL;
  return placement;
}

std::int64_t UniversalObject::invoke(sim::Ctx& ctx, std::int64_t op) {
  expects(op >= 0 && op <= 0xffffffffLL,
          "universal object operations are 32-bit payloads");
  const int pid = ctx.pid();
  Cursor& cursor = cursors_[static_cast<std::size_t>(pid)];
  const std::int64_t my_seq = ++cursor.local_seq;
  announce_[static_cast<std::size_t>(pid)].write(ctx, {my_seq, op});
  const int announce_cell = cursor.next_cell;

  for (;;) {
    expects(cursor.next_cell < max_ops_,
            "universal object capacity exhausted");
    const int cell_index = cursor.next_cell;
    auto& cell = cells_[static_cast<std::size_t>(cell_index)];

    // Candidate: the pending operation of the process this cell prioritizes,
    // else the next pending one round-robin from there (ourselves included).
    Placement candidate{-1, 0, 0};
    for (int offset = 0; offset < n_; ++offset) {
      const int q = (cell_index + offset) % n_;
      if (q == pid) {
        // Our own announce needs no shared read.
        if (cursor.applied_seq[static_cast<std::size_t>(q)] < my_seq) {
          candidate = {pid, my_seq, op};
          break;
        }
        continue;
      }
      const auto [seq, pending_op] =
          announce_[static_cast<std::size_t>(q)].read(ctx);
      if (seq > cursor.applied_seq[static_cast<std::size_t>(q)]) {
        candidate = {q, seq, pending_op};
        break;
      }
    }
    expects(candidate.pid >= 0,
            "no pending operation although ours is pending");

    const std::int64_t decided =
        cell.propose(ctx, encode(candidate, n_));
    const Placement placed = decode(decided, n_);

    // Apply the decided operation to the local replay.
    const std::int64_t response = spec_.apply(cursor.state, placed.op);
    cursor.applied_seq[static_cast<std::size_t>(placed.pid)] = placed.seq;
    ++cursor.next_cell;

    if (placed.pid == pid && placed.seq == my_seq) {
      cursor.distances.push_back(cursor.next_cell - 1 - announce_cell);
      return response;
    }
  }
}

int UniversalObject::log_length() const {
  for (int cell = 0; cell < max_ops_; ++cell) {
    if (cells_[static_cast<std::size_t>(cell)].peek() ==
        sim::StickyRegister::kUnset) {
      return cell;
    }
  }
  return max_ops_;
}

const std::vector<int>& UniversalObject::placement_distances(int pid) const {
  return cursors_[static_cast<std::size_t>(pid)].distances;
}

SequentialSpec counter_spec() {
  SequentialSpec spec;
  spec.initial_state = {0};
  spec.apply = [](std::vector<std::int64_t>& state, std::int64_t op) {
    (void)op;  // every op is fetch-and-increment
    return state[0]++;
  };
  return spec;
}

SequentialSpec queue_spec() {
  SequentialSpec spec;
  spec.initial_state = {};  // the queue contents
  spec.apply = [](std::vector<std::int64_t>& state, std::int64_t op) {
    if (op == 0) {  // dequeue
      if (state.empty()) return std::int64_t{-1};
      const std::int64_t front = state.front();
      state.erase(state.begin());
      return front;
    }
    state.push_back(op - 1);  // enqueue (op - 1)
    return std::int64_t{0};
  };
  return spec;
}

}  // namespace bss::hierarchy
