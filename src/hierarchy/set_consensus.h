// k-set consensus — the decision task the Section 3 reduction produces.
//
// Definition (paper §2): n processes with inputs each decide a value such
// that (a) at most l distinct decisions occur, (b) every process decides in
// finitely many steps, (c) every decision is some process's input.  It is
// solvable from read/write registers iff l >= n (else impossible —
// Borowsky-Gafni / Herlihy-Shavit / Saks-Zaharoglou), and trivially solvable
// for any l from l consensus objects: partition the processes into l groups
// and run one consensus per group.  Both constructions live here; the
// partition algorithm is exactly the shape of the emulation's output (one
// group per label, one decision per group).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "registers/sticky.h"
#include "registers/swmr_register.h"
#include "runtime/crash_plan.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace bss::hierarchy {

struct SetConsensusReport {
  sim::RunReport run;
  std::vector<std::optional<std::int64_t>> decisions;  // by pid
  int distinct_decisions = 0;
  bool valid = true;  ///< every decision was some process's input
};

/// l-set consensus among n processes from l sticky registers: process pid
/// proposes through register pid % l.  Wait-free for any n; at most l
/// distinct decisions by construction.
SetConsensusReport run_partition_set_consensus(
    int n, int l, const std::vector<std::int64_t>& inputs,
    sim::Scheduler& scheduler, const sim::CrashPlan& crashes = {});

/// n-set consensus among n processes from read/write registers only (the
/// trivial "decide your own input" protocol — the l >= n boundary case,
/// included to mark where possibility ends: for l < n the task is
/// impossible over registers, which is the theorem the reduction leans on).
SetConsensusReport run_trivial_set_consensus(
    int n, const std::vector<std::int64_t>& inputs, sim::Scheduler& scheduler,
    const sim::CrashPlan& crashes = {});

}  // namespace bss::hierarchy
