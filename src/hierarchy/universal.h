// Herlihy's wait-free universal construction [10], driven by one-shot
// consensus objects (sticky registers [20]).
//
// The paper's framing: compare&swap-like objects are *universal* — any
// sequentially specified object has a wait-free implementation from them
// [10] (made bounded by Jayanti-Toueg [15]).  This module is that
// construction, and the contrast it sets up is the whole point of the paper:
// universality needs an unbounded supply of consensus cells, while a single
// BOUNDED object (compare&swap-(k)) tops out at O(k^(k^2+3)) processes even
// for leader election.
//
// Construction (classic linked-log form):
//   * announce[p]  — SWMR register holding p's current pending operation;
//   * cells[0..]   — a consensus object per log position deciding WHICH
//     announced operation occupies that position;
//   * every process drives the log forward, proposing at cell c the pending
//     operation of process (c mod n) if any — the round-robin helping that
//     makes the construction wait-free: within n cells of announcing, some
//     cell prioritizes you and every helper proposes your operation.
// Each process replays the decided log through the sequential specification
// to compute its own operation's response.  Cells are preallocated (the
// simulator needs objects up front); capacity is the total operation count,
// which is the documented substitute for [15]'s bounded recycling.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "registers/sticky.h"
#include "registers/swmr_register.h"
#include "runtime/sim_env.h"

namespace bss::hierarchy {

/// A sequential object: deterministic apply over explicit state.
struct SequentialSpec {
  std::vector<std::int64_t> initial_state;
  /// Applies `op` to `state`, returns the operation's response.
  std::function<std::int64_t(std::vector<std::int64_t>& state,
                             std::int64_t op)>
      apply;
};

class UniversalObject {
 public:
  /// `n` processes, at most `max_ops` invocations in total across all of
  /// them (the preallocated log capacity).  Operations are 32-bit payloads.
  UniversalObject(std::string name, SequentialSpec spec, int n, int max_ops);

  /// Applies `op` wait-free on behalf of ctx.pid(); returns the sequential
  /// response.  Linearizable: responses across processes are consistent
  /// with one total log order (the decided cells).
  std::int64_t invoke(sim::Ctx& ctx, std::int64_t op);

  /// Number of log cells decided so far (checker access).
  int log_length() const;
  /// Distance in cells between a process's announce and its placement, for
  /// the helping-bound tests; indexed by invocation order of that process.
  const std::vector<int>& placement_distances(int pid) const;

 private:
  struct Placement {
    int pid;
    std::int64_t seq;
    std::int64_t op;
  };
  static std::int64_t encode(const Placement& placement, int n);
  static Placement decode(std::int64_t value, int n);

  // Per-process replay cursor (local state mirrored per pid; the simulator
  // runs one process at a time, so keeping them here is safe and keeps the
  // public API free of per-process handles).
  struct Cursor {
    std::vector<std::int64_t> state;
    std::vector<std::int64_t> applied_seq;  // last applied seq per pid
    int next_cell = 0;
    std::int64_t local_seq = 0;
    std::vector<int> distances;
  };

  std::string name_;
  SequentialSpec spec_;
  int n_;
  int max_ops_;
  std::vector<sim::SwmrRegister<std::pair<std::int64_t, std::int64_t>>>
      announce_;  // (seq, op); seq 0 = nothing pending yet
  std::vector<sim::StickyRegister> cells_;
  std::vector<Cursor> cursors_;
};

/// Ready-made sequential specifications for tests, benches and examples.
SequentialSpec counter_spec();
/// FIFO queue over ops: enqueue value v -> op = v+1 (v >= 0), dequeue ->
/// op = 0; dequeue returns -1 when empty.
SequentialSpec queue_spec();

}  // namespace bss::hierarchy
