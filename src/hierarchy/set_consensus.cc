#include "hierarchy/set_consensus.h"

#include <set>

#include "util/checked.h"

namespace bss::hierarchy {

namespace {

SetConsensusReport finalize(SetConsensusReport report,
                            const std::vector<std::int64_t>& inputs) {
  std::set<std::int64_t> distinct;
  for (std::size_t pid = 0; pid < report.decisions.size(); ++pid) {
    if (report.run.outcomes[pid] != sim::ProcOutcome::kFinished) {
      report.decisions[pid].reset();
      continue;
    }
    const auto& decision = report.decisions[pid];
    if (!decision.has_value()) continue;
    distinct.insert(*decision);
    bool proposed = false;
    for (const auto input : inputs) proposed = proposed || input == *decision;
    if (!proposed) report.valid = false;
  }
  report.distinct_decisions = checked_cast<int>(distinct.size());
  return report;
}

}  // namespace

SetConsensusReport run_partition_set_consensus(
    int n, int l, const std::vector<std::int64_t>& inputs,
    sim::Scheduler& scheduler, const sim::CrashPlan& crashes) {
  expects(n >= 1 && l >= 1, "set consensus needs n, l >= 1");
  expects(inputs.size() == static_cast<std::size_t>(n),
          "one input per process");
  std::vector<sim::StickyRegister> groups;
  groups.reserve(static_cast<std::size_t>(l));
  for (int group = 0; group < l; ++group) {
    groups.emplace_back("group[" + std::to_string(group) + "]");
  }
  SetConsensusReport report;
  report.decisions.resize(static_cast<std::size_t>(n));

  sim::SimEnv env;
  for (int pid = 0; pid < n; ++pid) {
    const std::int64_t input = inputs[static_cast<std::size_t>(pid)];
    auto& group = groups[static_cast<std::size_t>(pid % l)];
    env.add_process([&report, &group, pid, input](sim::Ctx& ctx) {
      report.decisions[static_cast<std::size_t>(pid)] =
          group.propose(ctx, input);
    });
  }
  report.run = env.run(scheduler, crashes);
  return finalize(std::move(report), inputs);
}

SetConsensusReport run_trivial_set_consensus(
    int n, const std::vector<std::int64_t>& inputs, sim::Scheduler& scheduler,
    const sim::CrashPlan& crashes) {
  expects(n >= 1, "set consensus needs n >= 1");
  expects(inputs.size() == static_cast<std::size_t>(n),
          "one input per process");
  // One SWMR register per process, written then decided from: the protocol
  // is register-only and trivially satisfies n-set consensus.
  std::vector<sim::SwmrRegister<std::int64_t>> board;
  board.reserve(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    board.emplace_back("announce[" + std::to_string(pid) + "]", pid,
                       std::int64_t{-1});
  }
  SetConsensusReport report;
  report.decisions.resize(static_cast<std::size_t>(n));

  sim::SimEnv env;
  for (int pid = 0; pid < n; ++pid) {
    const std::int64_t input = inputs[static_cast<std::size_t>(pid)];
    env.add_process([&report, &board, pid, input](sim::Ctx& ctx) {
      board[static_cast<std::size_t>(pid)].write(ctx, input);
      report.decisions[static_cast<std::size_t>(pid)] =
          board[static_cast<std::size_t>(pid)].read(ctx);
    });
  }
  report.run = env.run(scheduler, crashes);
  return finalize(std::move(report), inputs);
}

}  // namespace bss::hierarchy
