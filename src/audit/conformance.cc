#include "audit/conformance.h"

#include <algorithm>
#include <iterator>
#include <sstream>

namespace bss::audit {

namespace {

std::string window_label(const WindowFootprint& window) {
  std::ostringstream out;
  out << "p" << window.pid << " " << window.declared.object << "."
      << window.declared.op << "@" << window.step;
  return out.str();
}

}  // namespace

std::vector<Violation> check_footprint(const WindowFootprint& window) {
  std::vector<Violation> found;
  // No stamps at all: the object is not instrumented (emulated objects
  // drive sync() directly); nothing to conform against.
  if (window.touched.empty()) return found;

  bool declared_touched = false;
  bool declared_written = false;
  std::vector<std::string> undeclared;  // distinct, first-touch order
  for (const auto& [object, kind] : window.touched) {
    if (object == window.declared.object) {
      declared_touched = true;
      if (kind == AccessKind::kWrite) declared_written = true;
      continue;
    }
    if (std::find(undeclared.begin(), undeclared.end(), object) ==
        undeclared.end()) {
      undeclared.push_back(object);
    }
  }

  for (const auto& object : undeclared) {
    Violation violation;
    violation.kind = ViolationKind::kUndeclaredTouch;
    violation.pid = window.pid;
    violation.object = object;
    violation.step = window.step;
    violation.detail = window_label(window) + " touched undeclared object '" +
                       object + "' (sleep-set soundness depends on declared "
                       "footprints)";
    found.push_back(std::move(violation));
  }
  if (window.declared.op == "read" && declared_written) {
    Violation violation;
    violation.kind = ViolationKind::kWriteInReadOp;
    violation.pid = window.pid;
    violation.object = window.declared.object;
    violation.step = window.step;
    violation.detail = window_label(window) +
                       " declared a read but wrote '" +
                       window.declared.object +
                       "' (read/read commutation no longer holds)";
    found.push_back(std::move(violation));
  }
  if (!declared_touched && !window.aborted) {
    Violation violation;
    violation.kind = ViolationKind::kPhantomDeclaration;
    violation.pid = window.pid;
    violation.object = window.declared.object;
    violation.step = window.step;
    violation.detail = window_label(window) + " never touched declared object '" +
                       window.declared.object + "' (declaration drift)";
    found.push_back(std::move(violation));
  }
  return found;
}

std::vector<Violation> check_footprints(
    const std::vector<WindowFootprint>& log) {
  std::vector<Violation> found;
  for (const auto& window : log) {
    auto violations = check_footprint(window);
    found.insert(found.end(), std::make_move_iterator(violations.begin()),
                 std::make_move_iterator(violations.end()));
  }
  return found;
}

}  // namespace bss::audit
