// Access-ledger soundness auditing for the simulator.
//
// Everything the explorer reports rests on two unchecked assumptions: that
// every shared access happens inside a granted Ctx::sync(OpDesc) window with
// an honestly declared object name, and that the POR commutation oracle
// never calls a conflicting pair independent.  This module audits the first
// assumption dynamically (commute_check.h audits the second): registers
// check out a small AccessToken from their Ctx and stamp every load/store of
// shared state with it, and an Auditor attached to the SimEnv verifies each
// stamp against the currently open grant window.
//
//  * Race detection — an access outside any granted window, by a pid other
//    than the grantee, or through a token checked out during an earlier
//    window (stale) is a data race in the model's terms: shared state
//    touched without the scheduler's permission.
//
//  * Footprint conformance (conformance.h) — at window close, the set of
//    objects actually touched is diffed against the declared OpDesc.
//    Under-declaration silently unsounds the explorer's sleep sets;
//    over-declaration wastes pruning and signals a drifting declaration.
//
// Layering: this header is intentionally free of any audit *library*
// dependency for its hot-path types — AccessObserver is an abstract
// interface and AccessToken is fully inline — so runtime/sim_env.h can
// include it and bss_runtime needs no link edge to bss_audit.  Only code
// that instantiates the concrete Auditor (the explorer, tests, benches)
// links bss_audit.
//
// Determinism: observers are passive.  Attaching one never changes
// scheduling, trace content, or results — audit on/off yields byte-identical
// schedules, stats and artifacts (asserted in tests/test_audit.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/trace.h"

namespace bss::audit {

enum class AccessKind : std::uint8_t {
  kRead,   ///< shared state loaded
  kWrite,  ///< shared state stored (or potentially mutated: RMW, CAS, ...)
};

std::string to_string(AccessKind kind);

/// Interface the simulator drives: window brackets from the engine thread,
/// access stamps from the (serialized) process threads.  The engine's
/// semaphore protocol orders every call, so implementations need no locks.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// A grant window opens: the scheduler granted `pid` the operation it
  /// declared as `op`; `step` is the global step index of the grant (unique
  /// per window — the window's serial number).
  virtual void on_window_begin(int pid, const sim::OpDesc& op,
                               std::uint64_t step) = 0;

  /// The window closes.  `aborted` is true when the operation unwound with
  /// an exception (e.g. a register trapping a discipline violation) instead
  /// of completing — conformance checks skip aborted windows.
  virtual void on_window_end(int pid, bool aborted) = 0;

  /// A shared access stamped by `pid`'s token.  `token_window` is the
  /// window serial captured when the token was checked out, or
  /// AccessToken-no-window when it was checked out with no window open.
  virtual void on_access(int pid, const std::string& object, AccessKind kind,
                         std::uint64_t token_window) = 0;
};

/// The stamp registers use to report their shared accesses.  Checked out
/// from Ctx::access_token() — ideally right after the op's sync() returns —
/// and valid for that granted window only.  When no observer is attached
/// (the default everywhere outside audit mode) every call is a two-word
/// no-op, so the register library carries the instrumentation at zero cost.
class AccessToken {
 public:
  /// Serial carried by tokens checked out while no window was open (body
  /// code ahead of its first sync, restart hooks before re-syncing, ...).
  static constexpr std::uint64_t kNoWindow = ~std::uint64_t{0};

  AccessToken() = default;
  AccessToken(AccessObserver* observer, int pid, std::uint64_t window)
      : observer_(observer), pid_(pid), window_(window) {}

  /// True iff an observer is attached (accesses are actually recorded).
  bool armed() const { return observer_ != nullptr; }

  void read(const std::string& object) const {
    if (observer_ != nullptr) {
      observer_->on_access(pid_, object, AccessKind::kRead, window_);
    }
  }

  void write(const std::string& object) const {
    if (observer_ != nullptr) {
      observer_->on_access(pid_, object, AccessKind::kWrite, window_);
    }
  }

 private:
  AccessObserver* observer_ = nullptr;
  int pid_ = -1;
  std::uint64_t window_ = kNoWindow;
};

// --------------------------------------------------------------- violations

enum class ViolationKind {
  kUnsyncedAccess,      ///< shared access with no grant window open
  kWrongPid,            ///< access inside a window granted to another pid
  kStaleToken,          ///< token checked out under an earlier window
  kUndeclaredTouch,     ///< op touched an object its OpDesc never declared
  kWriteInReadOp,       ///< op declared "read" but wrote its object
  kPhantomDeclaration,  ///< op declared an object it never touched
};

std::string to_string(ViolationKind kind);

/// One audit finding, with a stack-free "who/what/step" description plus
/// the recent-window prefix that led to it.
struct Violation {
  ViolationKind kind = ViolationKind::kUnsyncedAccess;
  int pid = -1;
  std::string object;
  /// Global step of the enclosing window (or of the most recent window for
  /// unsynced accesses, which by definition have none of their own).
  std::uint64_t step = 0;
  std::string detail;  ///< full human-readable description

  std::string to_string() const;
};

// ------------------------------------------------------------------ auditor

struct AuditorOptions {
  /// Keep at most this many Violation records (the count keeps rising
  /// past it); 0 keeps every record.
  std::size_t max_violations = 64;
  /// Grant windows of context prepended to each violation description —
  /// the "offending trace prefix".
  std::size_t trace_context = 8;
  /// Retain every window's footprint for post-run inspection (tests);
  /// off keeps memory flat during long explorations.
  bool keep_footprints = false;
};

/// Forward-declared here, defined in conformance.h: the per-window actual
/// footprint the conformance checker diffs against the declaration.
struct WindowFootprint;

/// The concrete observer: verifies every access stamp against the open
/// window (race detection) and diffs each closed window's actual footprint
/// against its declaration (conformance).  State is a pure function of the
/// observed run, so identical runs produce identical findings — which is
/// what lets ledger violations flow through the explorer's deterministic
/// counterexample machinery.
class Auditor final : public AccessObserver {
 public:
  explicit Auditor(AuditorOptions options = {});
  ~Auditor() override;

  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  void on_window_begin(int pid, const sim::OpDesc& op,
                       std::uint64_t step) override;
  void on_window_end(int pid, bool aborted) override;
  void on_access(int pid, const std::string& object, AccessKind kind,
                 std::uint64_t token_window) override;

  bool clean() const { return violation_count_ == 0; }
  /// Total violations observed (may exceed violations().size(), which is
  /// capped by AuditorOptions::max_violations).
  std::uint64_t violation_count() const { return violation_count_; }
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t windows() const { return windows_; }
  std::uint64_t accesses() const { return accesses_; }
  /// Every closed window's footprint (AuditorOptions::keep_footprints).
  const std::vector<WindowFootprint>& footprints() const;

  /// One-line deterministic digest: violation count plus the first finding.
  std::string summary() const;

  /// Forgets everything observed; options are kept.
  void reset();

 private:
  void record(Violation violation);
  std::string context_prefix() const;

  AuditorOptions options_;

  // Current window (at most one: the engine grants one step at a time).
  bool window_open_ = false;
  bool window_dirty_ = false;  ///< a race was already reported in it
  int window_pid_ = -1;
  std::uint64_t window_serial_ = 0;
  sim::OpDesc window_declared_;
  std::vector<std::pair<std::string, AccessKind>> window_touches_;

  // Rolling context of recently closed/open windows ("p0 cas.cas@3").
  std::vector<std::string> recent_windows_;

  std::uint64_t windows_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<Violation> violations_;
  std::vector<WindowFootprint> footprints_;
};

}  // namespace bss::audit
