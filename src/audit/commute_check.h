// Differential validation of the POR commutation oracle.
//
// Sleep-set reduction prunes an interleaving exactly when the oracle
// (explore::ops_commute) says the reordered pair is independent — so an
// oracle that ever calls a conflicting pair independent silently removes
// the schedules that could refute a buggy system.  This module tests the
// oracle *dynamically*: given the complete decision tape of a run, it finds
// adjacent grant pairs the oracle calls independent, replays the run with
// the pair swapped on a private SimEnv, and demands byte-identical results
// — the full trace (modulo the swapped pair itself), the RunReport, the
// property verdict, and the instance's state fingerprint.  Any difference
// means the two operations did NOT commute and the oracle was wrong.
//
// Both orders of an adjacent pair are legal schedules (each process was
// already parked on its operation before the pair began), so a swapped tape
// always replays; an entry turning inapplicable mid-replay is itself
// evidence of non-commutation and is reported as a mismatch.
//
// The oracle arrives as a parameter (bss_audit does not link bss_explore;
// it uses only the header-only tape encoding and system interfaces), so
// tests can also probe deliberately wrong oracles.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "explore/explore.h"
#include "runtime/trace.h"

namespace bss::audit {

using CommuteOracle =
    std::function<bool(const sim::OpDesc&, const sim::OpDesc&)>;

struct CommuteCheckOptions {
  /// Step limit for every replay (baseline and swapped).
  std::uint64_t max_depth = 4096;
  /// Adjacent independent pairs replayed per tape (earliest first); 0 means
  /// all of them.
  std::size_t max_swaps = 64;
  /// Stop after this many mismatches (each one already refutes the oracle).
  std::size_t max_mismatches = 8;
};

/// One refutation of the oracle: the swapped replay diverged.
struct CommuteMismatch {
  std::size_t tape_index = 0;  ///< position of the pair's first decision
  int first_pid = -1;
  int second_pid = -1;
  sim::OpDesc first;
  sim::OpDesc second;
  std::string detail;  ///< which comparison failed, human-readable
};

struct CommuteCheckReport {
  /// False iff the baseline tape did not replay cleanly (foreign or stale
  /// tape); no pairs are checked in that case.
  bool baseline_ok = false;
  std::uint64_t pairs_considered = 0;  ///< adjacent pairs oracle called independent
  std::uint64_t swaps_replayed = 0;
  std::vector<CommuteMismatch> mismatches;

  bool ok() const { return mismatches.empty(); }
  std::string summary() const;
};

/// Replays `tape` on fresh instances of `system` and cross-checks every
/// adjacent independent pair (per `commutes`) by swapped replay.
CommuteCheckReport cross_check_commutation(
    const explore::ExplorableSystem& system, const std::vector<int>& tape,
    const CommuteOracle& commutes, const CommuteCheckOptions& options = {});

}  // namespace bss::audit
