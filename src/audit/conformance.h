// Footprint conformance: does an operation's actual access set match its
// declared OpDesc?
//
// The explorer's sleep-set POR prunes interleavings using the declared
// footprint alone, so an op that touches an object it never declared
// (under-declaration) silently unsounds the reduction — schedules that
// could distinguish the hidden conflict are pruned as redundant.  The
// converse (declaring an object the op never touches) is harmless to
// soundness but wastes pruning and flags a declaration drifting away from
// the implementation, so it is reported too.
//
// A third rule keys off the commutation oracle's one special case: ops
// named "read" are assumed side-effect-free (read/read pairs on the same
// object commute), so an op declared "read" that *writes* its object is an
// under-declared conflict even though the object name matches.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "audit/ledger.h"
#include "runtime/trace.h"

namespace bss::audit {

/// What one granted window actually did, as reported by the tokens.
struct WindowFootprint {
  int pid = -1;
  std::uint64_t step = 0;   ///< global step of the grant (window serial)
  sim::OpDesc declared;     ///< the OpDesc the op synced with
  /// Every stamped access in program order (object, kind); may repeat.
  std::vector<std::pair<std::string, AccessKind>> touched;
  bool aborted = false;     ///< op unwound with an exception mid-window
};

/// Diffs one window against its declaration.  Aborted windows are exempt
/// from the phantom rule only — an op that trapped before touching its
/// object is fine, but anything it DID touch must still have been declared.
/// Instrumentation-free windows (no touches at all, e.g. an emulated object
/// that performs no direct state access) are exempt entirely: an empty
/// ledger is "not instrumented", not "touched nothing".
std::vector<Violation> check_footprint(const WindowFootprint& window);

/// Whole-log pass over every window of a run, in order.
std::vector<Violation> check_footprints(
    const std::vector<WindowFootprint>& log);

}  // namespace bss::audit
