#include "audit/commute_check.h"

#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "runtime/sim_env.h"

namespace bss::audit {

namespace {

using explore::Action;
using explore::ActionKind;
using explore::decode_action;

/// Everything one strict replay produces, for byte-level comparison.
struct ReplayResult {
  bool applied = false;    ///< every tape entry was applicable, in order
  bool quiesced = false;   ///< all processes done when the tape ran out
  bool truncated = false;
  std::vector<sim::TraceEvent> events;  ///< granted ops, in order
  sim::RunReport report;
  std::optional<std::string> verdict;
  std::string fingerprint;
};

bool action_applicable(const sim::SimEnv& env, int decision) {
  const Action action = decode_action(decision);
  if (action.pid < 0 || action.pid >= env.process_count()) return false;
  if (!env.is_parked(action.pid)) return false;
  switch (action.kind) {
    case ActionKind::kGrant:
    case ActionKind::kCrash:
      return true;
    case ActionKind::kRestart:
      return env.restart_supported(action.pid);
    case ActionKind::kScFailure:
      return env.pending_of(action.pid).op == "sc";
  }
  return false;
}

/// Replays `tape` verbatim — no divergence-skipping: an inapplicable entry
/// fails the replay (for the baseline that means a stale tape; for a
/// swapped tape it means the pair did not commute).
ReplayResult strict_replay(const explore::ExplorableSystem& system,
                           const std::vector<int>& tape,
                           std::uint64_t max_depth) {
  ReplayResult result;
  auto instance = system.make();
  sim::SimOptions sim_options;
  sim_options.step_limit = max_depth;
  sim_options.record_trace = true;
  sim::SimEnv env(sim_options);
  instance->populate(env);
  env.start();

  std::uint64_t granted = 0;
  bool applied = true;
  for (const int decision : tape) {
    if (granted >= max_depth) {
      result.truncated = true;
      break;
    }
    if (!action_applicable(env, decision)) {
      applied = false;
      break;
    }
    const Action action = decode_action(decision);
    switch (action.kind) {
      case ActionKind::kGrant:
        env.step_process(action.pid);
        ++granted;
        break;
      case ActionKind::kScFailure:
        env.inject_sc_failure(action.pid);
        env.step_process(action.pid);
        ++granted;
        break;
      case ActionKind::kCrash:
        env.kill_process(action.pid);
        break;
      case ActionKind::kRestart:
        env.restart_process(action.pid);
        break;
    }
  }
  bool quiesced = true;
  for (int pid = 0; pid < env.process_count(); ++pid) {
    if (!env.is_finished(pid)) quiesced = false;
  }
  env.finish();

  result.applied = applied;
  result.quiesced = quiesced;
  result.events = env.trace().events();
  result.report = env.snapshot_report();
  result.report.step_limit_hit = result.truncated;
  if (applied && quiesced && !result.truncated) {
    result.verdict = instance->check(env, result.report);
    result.fingerprint = instance->fingerprint(env);
  }
  return result;
}

bool events_equal(const sim::TraceEvent& a, const sim::TraceEvent& b) {
  // step is positional (dense in both runs) and carries no information the
  // index does not; everything else must match exactly.
  return a.pid == b.pid && a.desc.object == b.desc.object &&
         a.desc.op == b.desc.op && a.desc.arg0 == b.desc.arg0 &&
         a.desc.arg1 == b.desc.arg1 && a.has_result == b.has_result &&
         a.result == b.result;
}

bool reports_equal(const sim::RunReport& a, const sim::RunReport& b) {
  return a.total_steps == b.total_steps &&
         a.step_limit_hit == b.step_limit_hit && a.outcomes == b.outcomes &&
         a.errors == b.errors && a.steps_by_pid == b.steps_by_pid &&
         a.restarts_by_pid == b.restarts_by_pid;
}

/// First difference between the swapped replay and the baseline with the
/// pair at event positions (gi, gi+1) exchanged; empty when identical.
std::string diff_replays(const ReplayResult& baseline,
                         const ReplayResult& swapped, std::size_t gi) {
  if (!swapped.applied) {
    return "swapped tape became inapplicable mid-replay";
  }
  if (!swapped.quiesced) {
    return "swapped run did not quiesce on the same tape";
  }
  if (swapped.truncated) return "swapped run hit the step limit";
  if (swapped.events.size() != baseline.events.size()) {
    std::ostringstream out;
    out << "trace length changed: " << baseline.events.size() << " -> "
        << swapped.events.size();
    return out.str();
  }
  for (std::size_t i = 0; i < baseline.events.size(); ++i) {
    // Under true commutation the swapped run is the baseline with the two
    // granted events exchanged and nothing else disturbed.
    const std::size_t expect_from = i == gi ? gi + 1 : (i == gi + 1 ? gi : i);
    if (!events_equal(swapped.events[i], baseline.events[expect_from])) {
      std::ostringstream out;
      const auto& got = swapped.events[i];
      const auto& want = baseline.events[expect_from];
      out << "trace diverged at event " << i << ": expected p" << want.pid
          << " " << want.desc.object << "." << want.desc.op;
      if (want.has_result) out << "=" << want.result;
      out << ", got p" << got.pid << " " << got.desc.object << "."
          << got.desc.op;
      if (got.has_result) out << "=" << got.result;
      return out.str();
    }
  }
  if (!reports_equal(swapped.report, baseline.report)) {
    return "run reports differ: [" + baseline.report.summary() + "] vs [" +
           swapped.report.summary() + "]";
  }
  if (swapped.verdict != baseline.verdict) {
    return "property verdicts differ: [" +
           baseline.verdict.value_or("(clean)") + "] vs [" +
           swapped.verdict.value_or("(clean)") + "]";
  }
  if (swapped.fingerprint != baseline.fingerprint) {
    return "state fingerprints differ: [" + baseline.fingerprint + "] vs [" +
           swapped.fingerprint + "]";
  }
  return {};
}

bool grant_like(int decision) {
  const ActionKind kind = decode_action(decision).kind;
  return kind == ActionKind::kGrant || kind == ActionKind::kScFailure;
}

}  // namespace

std::string CommuteCheckReport::summary() const {
  std::ostringstream out;
  out << "commute-check: pairs=" << pairs_considered
      << " swaps=" << swaps_replayed << " mismatches=" << mismatches.size();
  if (!baseline_ok) out << " (baseline did not replay)";
  if (!mismatches.empty()) {
    out << "; first: " << mismatches.front().detail;
  }
  return out.str();
}

CommuteCheckReport cross_check_commutation(
    const explore::ExplorableSystem& system, const std::vector<int>& tape,
    const CommuteOracle& commutes, const CommuteCheckOptions& options) {
  CommuteCheckReport report;
  const ReplayResult baseline = strict_replay(system, tape, options.max_depth);
  if (!baseline.applied || !baseline.quiesced || baseline.truncated) {
    return report;  // foreign/stale tape: nothing sound to compare against
  }
  report.baseline_ok = true;

  // Granted-event index for every tape position (grants and spurious SCs
  // produce trace events; crash/restart decisions do not).
  std::vector<std::size_t> event_index(tape.size(), 0);
  std::size_t next_event = 0;
  for (std::size_t i = 0; i < tape.size(); ++i) {
    event_index[i] = next_event;
    if (grant_like(tape[i])) ++next_event;
  }

  for (std::size_t i = 0; i + 1 < tape.size(); ++i) {
    if (!grant_like(tape[i]) || !grant_like(tape[i + 1])) continue;
    const Action a = decode_action(tape[i]);
    const Action b = decode_action(tape[i + 1]);
    if (a.pid == b.pid) continue;  // program order, never reorderable
    const std::size_t gi = event_index[i];
    const sim::OpDesc& op_a = baseline.events[gi].desc;
    const sim::OpDesc& op_b = baseline.events[gi + 1].desc;
    if (!commutes(op_a, op_b)) continue;  // oracle claims a conflict: fine
    ++report.pairs_considered;
    if (options.max_swaps > 0 && report.swaps_replayed >= options.max_swaps) {
      continue;  // keep counting pairs; stop paying for replays
    }

    std::vector<int> swapped_tape = tape;
    std::swap(swapped_tape[i], swapped_tape[i + 1]);
    ++report.swaps_replayed;
    const ReplayResult swapped =
        strict_replay(system, swapped_tape, options.max_depth);
    const std::string diff = diff_replays(baseline, swapped, gi);
    if (diff.empty()) continue;

    CommuteMismatch mismatch;
    mismatch.tape_index = i;
    mismatch.first_pid = a.pid;
    mismatch.second_pid = b.pid;
    mismatch.first = op_a;
    mismatch.second = op_b;
    std::ostringstream detail;
    detail << "ops_commute called p" << a.pid << " " << op_a.object << "."
           << op_a.op << " and p" << b.pid << " " << op_b.object << "."
           << op_b.op << " independent at decisions " << i << "/" << (i + 1)
           << ", but swapping them changed the run: " << diff;
    mismatch.detail = detail.str();
    report.mismatches.push_back(std::move(mismatch));
    if (report.mismatches.size() >= options.max_mismatches) break;
  }
  return report;
}

}  // namespace bss::audit
