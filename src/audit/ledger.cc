#include "audit/ledger.h"

#include <sstream>
#include <utility>

#include "audit/conformance.h"

namespace bss::audit {

std::string to_string(AccessKind kind) {
  return kind == AccessKind::kRead ? "read" : "write";
}

std::string to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnsyncedAccess:
      return "unsynced-access";
    case ViolationKind::kWrongPid:
      return "wrong-pid";
    case ViolationKind::kStaleToken:
      return "stale-token";
    case ViolationKind::kUndeclaredTouch:
      return "undeclared-touch";
    case ViolationKind::kWriteInReadOp:
      return "write-in-read-op";
    case ViolationKind::kPhantomDeclaration:
      return "phantom-declaration";
  }
  return "?";
}

std::string Violation::to_string() const {
  std::ostringstream out;
  out << audit::to_string(kind) << ": " << detail;
  return out.str();
}

Auditor::Auditor(AuditorOptions options) : options_(options) {}

// Out of line so the Auditor vtable (and WindowFootprint's destructor,
// incomplete in ledger.h) anchor in this translation unit.
Auditor::~Auditor() = default;

const std::vector<WindowFootprint>& Auditor::footprints() const {
  return footprints_;
}

void Auditor::record(Violation violation) {
  ++violation_count_;
  if (options_.max_violations == 0 ||
      violations_.size() < options_.max_violations) {
    violations_.push_back(std::move(violation));
  }
}

std::string Auditor::context_prefix() const {
  if (recent_windows_.empty()) return "at the start of the run";
  std::ostringstream out;
  out << "after [";
  for (std::size_t i = 0; i < recent_windows_.size(); ++i) {
    if (i > 0) out << " ";
    out << recent_windows_[i];
  }
  out << "]";
  return out.str();
}

void Auditor::on_window_begin(int pid, const sim::OpDesc& op,
                              std::uint64_t step) {
  window_open_ = true;
  window_dirty_ = false;
  window_pid_ = pid;
  window_serial_ = step;
  window_declared_ = op;
  window_touches_.clear();
  ++windows_;

  std::ostringstream label;
  label << "p" << pid << " " << op.object << "." << op.op << "@" << step;
  recent_windows_.push_back(label.str());
  if (options_.trace_context > 0 &&
      recent_windows_.size() > options_.trace_context) {
    recent_windows_.erase(recent_windows_.begin());
  }
}

void Auditor::on_window_end(int pid, bool aborted) {
  if (!window_open_ || pid != window_pid_) return;  // defensive; engine-paired
  window_open_ = false;

  WindowFootprint footprint;
  footprint.pid = window_pid_;
  footprint.step = window_serial_;
  footprint.declared = window_declared_;
  footprint.touched = std::move(window_touches_);
  footprint.aborted = aborted;
  window_touches_.clear();

  // A window that already raced (wrong pid / stale token inside it) gets no
  // conformance verdict: the race report supersedes and a confused footprint
  // would only produce noise findings for the same root cause.
  if (!window_dirty_) {
    for (auto& violation : check_footprint(footprint)) {
      violation.detail += "; " + context_prefix();
      record(std::move(violation));
    }
  }
  if (options_.keep_footprints) footprints_.push_back(std::move(footprint));
}

void Auditor::on_access(int pid, const std::string& object, AccessKind kind,
                        std::uint64_t token_window) {
  ++accesses_;
  const auto describe = [&](const char* what) {
    std::ostringstream out;
    out << "p" << pid << " " << to_string(kind) << " of '" << object << "' "
        << what << "; " << context_prefix();
    return out.str();
  };

  if (!window_open_) {
    Violation violation;
    violation.kind = ViolationKind::kUnsyncedAccess;
    violation.pid = pid;
    violation.object = object;
    violation.step = window_serial_;  // most recent window, for orientation
    violation.detail = describe("outside any granted sync window");
    record(std::move(violation));
    return;
  }
  if (pid != window_pid_) {
    Violation violation;
    violation.kind = ViolationKind::kWrongPid;
    violation.pid = pid;
    violation.object = object;
    violation.step = window_serial_;
    std::ostringstream what;
    what << "inside a window granted to p" << window_pid_;
    violation.detail = describe(what.str().c_str());
    window_dirty_ = true;
    record(std::move(violation));
    return;
  }
  if (token_window != window_serial_) {
    Violation violation;
    violation.kind = ViolationKind::kStaleToken;
    violation.pid = pid;
    violation.object = object;
    violation.step = window_serial_;
    std::ostringstream what;
    what << "with a token from ";
    if (token_window == AccessToken::kNoWindow) {
      what << "outside any window";
    } else {
      what << "the window at step " << token_window;
    }
    what << " (current window opened at step " << window_serial_ << ")";
    violation.detail = describe(what.str().c_str());
    window_dirty_ = true;
    record(std::move(violation));
    return;
  }
  window_touches_.emplace_back(object, kind);
}

std::string Auditor::summary() const {
  std::ostringstream out;
  out << "audit: " << violation_count_ << " violation(s) across " << windows_
      << " window(s)";
  if (!violations_.empty()) {
    out << "; first: " << violations_.front().to_string();
  }
  return out.str();
}

void Auditor::reset() {
  window_open_ = false;
  window_dirty_ = false;
  window_pid_ = -1;
  window_serial_ = 0;
  window_declared_ = {};
  window_touches_.clear();
  recent_windows_.clear();
  windows_ = 0;
  accesses_ = 0;
  violation_count_ = 0;
  violations_.clear();
  footprints_.clear();
}

}  // namespace bss::audit
