// The excess graph (Definition 1) and its cycle machinery.
//
// For a group with history h(l), the excess of edge (a -> b) is
//   w(a->b) = f(a->b) - (p(a->b) - s(a->b))
// where f counts suspended-and-unreleased virtual processes whose next
// operation is c&s(a -> b) (with labels compatible with l), p counts a->b
// transitions in h(l), and s counts successful c&s(a -> b) operations
// already emulated in the run.  Positive excess = suspended processes the
// history has not yet consumed: the budget UpdateC&S spends when it splices
// value reuse into the history, and the currency of Lemma 1.1's game (an
// agent Move = spending an excess edge; a Jump = an emulator relocating its
// attack after another's move).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bss::emu {

class ExcessGraph {
 public:
  explicit ExcessGraph(int k);

  int k() const { return k_; }
  std::int64_t weight(int from, int to) const;
  void set_weight(int from, int to, std::int64_t weight);
  void add_weight(int from, int to, std::int64_t delta);

  std::string to_string() const;

 private:
  int k_;
  std::vector<std::int64_t> weights_;  // k*k, row-major
};

/// A cycle through `a` and `x` in the excess graph restricted to edges of
/// weight >= width: the path a ~> x and back.  Paths are full node
/// sequences including both endpoints.
struct CyclePaths {
  std::int64_t width = 0;
  std::vector<int> a_to_x;
  std::vector<int> x_to_a;
};

/// The widest such cycle (maximal minimum edge weight), or nullopt if no
/// positive-width cycle through both nodes exists.  a == x is allowed and
/// yields the trivial cycle of infinite width (paths {a}).
std::optional<CyclePaths> best_cycle(const ExcessGraph& graph, int a, int x);

/// Shortest path from `from` to `to` using edges of weight >= min_weight;
/// nullopt if unreachable.  Full node sequence including endpoints.
std::optional<std::vector<int>> path_with_min_weight(const ExcessGraph& graph,
                                                     int from, int to,
                                                     std::int64_t min_weight);

}  // namespace bss::emu
