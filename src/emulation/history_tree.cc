#include "emulation/history_tree.h"

#include "util/checked.h"
#include "util/permutation.h"

namespace bss::emu {

int TreeNode::depth() const {
  int d = 0;
  for (const TreeNode* node = parent; node != nullptr; node = node->parent) {
    ++d;
  }
  return d;
}

GroupTree::GroupTree(Label label) : label_(std::move(label)) {
  expects(!label_.empty(), "group label must start with ⊥");
  root_.symbol = label_.back();
}

TreeNode* GroupTree::rightmost() {
  TreeNode* node = &root_;
  while (!node->children.empty()) node = node->children.back().get();
  return node;
}

const TreeNode* GroupTree::rightmost() const {
  const TreeNode* node = &root_;
  while (!node->children.empty()) node = node->children.back().get();
  return node;
}

TreeNode* GroupTree::attach(TreeNode* parent, int symbol,
                            std::vector<int> from_parent,
                            std::vector<int> to_parent) {
  expects(parent != nullptr, "attach needs a parent node");
  auto child = std::make_unique<TreeNode>();
  child->symbol = symbol;
  child->from_parent = std::move(from_parent);
  child->to_parent = std::move(to_parent);
  child->parent = parent;
  TreeNode* raw = child.get();
  parent->children.push_back(std::move(child));
  return raw;
}

namespace {

// Figure 4 DFS: emits node.symbol on arrival; descending into a child emits
// child.from_parent first; ascending emits child.to_parent then the parent's
// symbol again.  Records the output index of the LAST arrival emission so
// the caller can truncate at the rightmost node.
void dfs(const TreeNode& node, std::vector<int>& out,
         std::size_t& last_arrival) {
  out.push_back(node.symbol);
  last_arrival = out.size() - 1;
  for (const auto& child : node.children) {
    out.insert(out.end(), child->from_parent.begin(),
               child->from_parent.end());
    dfs(*child, out, last_arrival);
    out.insert(out.end(), child->to_parent.begin(), child->to_parent.end());
    out.push_back(node.symbol);
  }
}

}  // namespace

void GroupTree::append_history(std::vector<int>& history,
                               bool truncate_at_rightmost) const {
  std::vector<int> sequence;
  std::size_t last_arrival = 0;
  dfs(root_, sequence, last_arrival);
  if (truncate_at_rightmost) {
    sequence.resize(last_arrival + 1);
  }
  history.insert(history.end(), sequence.begin(), sequence.end());
}

int GroupTree::node_count() const {
  int count = 0;
  // Tail-recursive walk without an explicit visitor type.
  std::vector<const TreeNode*> stack{&root_};
  while (!stack.empty()) {
    const TreeNode* node = stack.back();
    stack.pop_back();
    ++count;
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return count;
}

LabelForest::LabelForest(int k) : k_(k) {
  expects(k >= 2, "history forest needs k >= 2");
  trees_.emplace(Label{0}, std::make_unique<GroupTree>(Label{0}));
}

GroupTree* LabelForest::find(const Label& label) {
  const auto it = trees_.find(label);
  return it == trees_.end() ? nullptr : it->second.get();
}

const GroupTree* LabelForest::find(const Label& label) const {
  const auto it = trees_.find(label);
  return it == trees_.end() ? nullptr : it->second.get();
}

GroupTree* LabelForest::activate(const Label& label) {
  if (GroupTree* existing = find(label)) return existing;
  expects(label.size() >= 2, "cannot activate the root label");
  expects(is_permutation_prefix(
              std::vector<int>(label.begin() + 1, label.end()), 1, k_) &&
              label.front() == 0,
          "label must be ⊥ followed by distinct symbols");
  Label parent_label(label.begin(), label.end() - 1);
  expects(find(parent_label) != nullptr,
          "parent label not active: labels grow one symbol at a time");
  auto tree = std::make_unique<GroupTree>(label);
  GroupTree* raw = tree.get();
  trees_.emplace(label, std::move(tree));
  return raw;
}

Label LabelForest::extend_to_leaf(const Label& label) const {
  expects(find(label) != nullptr, "unknown label");
  Label current = label;
  for (;;) {
    bool extended = false;
    for (int symbol = 1; symbol < k_; ++symbol) {
      Label candidate = current;
      candidate.push_back(symbol);
      if (find(candidate) != nullptr) {
        current = std::move(candidate);
        extended = true;
        break;
      }
    }
    if (!extended) return current;
  }
}

std::vector<int> LabelForest::compute_history(const Label& label) const {
  expects(find(label) != nullptr, "unknown label");
  std::vector<int> history;
  for (std::size_t depth = 1; depth <= label.size(); ++depth) {
    const Label prefix(label.begin(),
                       label.begin() + checked_cast<long>(depth));
    const GroupTree* tree = find(prefix);
    expects(tree != nullptr, "missing tree on the label path");
    tree->append_history(history, /*truncate_at_rightmost=*/depth ==
                                      label.size());
  }
  return history;
}

int LabelForest::transition_count(const std::vector<int>& history, int from,
                                  int to) {
  int count = 0;
  for (std::size_t i = 1; i < history.size(); ++i) {
    if (history[i - 1] == from && history[i] == to) ++count;
  }
  return count;
}

std::vector<Label> LabelForest::active_labels() const {
  std::vector<Label> labels;
  labels.reserve(trees_.size());
  for (const auto& [label, tree] : trees_) {
    (void)tree;
    labels.push_back(label);
  }
  return labels;
}

}  // namespace bss::emu
