// The reduction driver: Section 3's emulation, executable.
//
// m emulators cooperatively construct runs of an algorithm A (the
// "v-processes" are A's front ends, hosted as parked simulator processes
// whose pending operation is visible and whose operation results the driver
// injects).  Emulators have only the read/write Board, the history forest T
// and the suspension lists — never a real compare&swap: successful c&s
// operations exist only as history-tree appends matched against suspended
// v-processes, exactly the paper's construction.
//
// One emulator iteration (Figure 3):
//   1. snapshot state; recompute label (migrate to a leaf of T) and h(l);
//   2. suspension quota: park v-processes poised on popular c&s edges;
//   3. if some v-process's next op is simple (read, write, or a c&s whose
//      expected value is not current) — emulate it directly;
//   4. else try CanRebalance (Figure 5): release a suspended v-process whose
//      successful c&s is backed by enough unmatched history transitions;
//   5. else UpdateC&S (Figure 6): append the most popular next value to the
//      history — attaching to the deepest ancestor whose excess-cycle width
//      clears the depth threshold, or activating a new group tree when the
//      value is fresh (label split) — then fail every active v-process with
//      the new current value.
// An emulator adopts the decision of the first of its v-processes to decide
// and leaves; the driver stops when all emulators decided or no emulator can
// act (a stall — which is itself informative: with A = the (k-1)!-capacity
// election there are simply not enough v-processes to feed (k-1)!+1
// emulators, the operational face of Theorem 1).
//
// Scaling note (DESIGN.md §6): the paper's quotas (m·k² suspensions per
// edge, release margin m, threshold Σ g·m^g) assume Θ = O(k^(k²+3))
// v-processes.  The quotas here are parameters with small defaults, and
// `direct_install` lets the installing v-process itself realize a new
// history transition (sound under the driver's iteration atomicity;
// disable it to exercise the paper-faithful suspended-backing discipline,
// which then requires proportionally more v-processes).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "emulation/board.h"
#include "emulation/excess.h"
#include "emulation/history_tree.h"
#include "runtime/sim_env.h"

namespace bss::emu {

/// What a v-process body needs from the emulation world.
struct VpHarness {
  int k = 0;
  Board* board = nullptr;
  /// Label of the emulator currently stepping this v-process (set by the
  /// driver before every step; reads consult it for compatibility).
  const Label* current_label = nullptr;
  /// Where the body records its decision (indexed by vp id).
  std::vector<std::optional<std::int64_t>>* decisions = nullptr;
};

/// Builds the simulator body of v-process `vp`.
using VpFactory =
    std::function<std::function<void(sim::Ctx&)>(int vp, const VpHarness&)>;

/// A = the FirstValueTree election: v-process i owns slot i, proposes
/// 1000 + i.  Requires total vps <= (k-1)!.
VpFactory fvt_vp_factory();

/// A = a value-reusing exerciser: each v-process toggles the register
/// ⊥ -> 1 -> ⊥ -> ... for `rounds` rounds (writing a log entry between
/// attempts), then decides its own id.  NOT a leader election — used to
/// drive the rebalance/cycle machinery, which first-value algorithms never
/// touch.
VpFactory token_race_factory(int rounds);

struct EmuParams {
  int k = 3;
  int m = 2;                  ///< emulators
  int vps_per_emulator = 1;
  int suspend_trigger = 2;    ///< paper: m*k^2
  int suspend_quota = 1;      ///< paper: m*k^2 (all of them)
  int release_margin = 1;     ///< paper: m
  int threshold_slope = 1;    ///< threshold(D) = slope * D (paper: Σ g·m^g)
  bool direct_install = true; ///< see the scaling note above
  int max_rounds = 100000;
  std::uint64_t step_limit = 10'000'000;
};

/// One emulated virtual-operation record, for the legality checks.
struct VpStep {
  int vp = -1;
  int emulator = -1;
  Label label;  ///< emulator's label when the step ran
  sim::OpDesc desc;
  std::int64_t result = 0;
  bool has_result = false;
};

struct Suspension {
  int vp = -1;
  int emulator = -1;
  int from = 0;
  int to = 0;
  Label label;
  std::size_t history_len_at_suspend = 0;
  bool released = false;
};

enum class EmuEventKind { kSuspend, kRelease, kInstall, kSplit, kMigrate };

struct EmuEvent {
  EmuEventKind kind;
  int emulator;
  Label label;
  std::string detail;
};

struct EmuStats {
  bool completed = false;   ///< every emulator decided
  bool stalled = false;     ///< a full round passed with no action possible
  int rounds = 0;
  int vp_steps = 0;
  int suspensions = 0;
  int releases = 0;
  int installs = 0;          ///< history appends (incl. new-tree activations)
  int splits = 0;            ///< new-tree activations (label extensions)
  std::vector<std::optional<std::int64_t>> decisions;  ///< per emulator
  std::vector<Label> final_labels;                     ///< per emulator
  int distinct_decisions = 0;
  std::size_t tree_count = 0;
};

class EmulationDriver {
 public:
  EmulationDriver(EmuParams params, const VpFactory& factory);
  ~EmulationDriver();

  EmulationDriver(const EmulationDriver&) = delete;
  EmulationDriver& operator=(const EmulationDriver&) = delete;

  /// Runs the emulation to completion or stall.
  EmuStats run();

  // --- inspection (for checks, benches, the walkthrough example) ---
  const std::vector<VpStep>& step_log() const { return step_log_; }
  const std::vector<Suspension>& suspensions() const { return suspensions_; }
  const std::vector<EmuEvent>& events() const { return events_; }
  const LabelForest& forest() const { return forest_; }
  const Board& board() const { return board_; }
  int total_vps() const { return total_vps_; }
  /// Excess graph for a label, from the current state (Definition 1).
  ExcessGraph excess_for(const Label& label) const;

 private:
  struct EmulatorState {
    int id = -1;
    Label label{0};
    std::vector<int> vps;  ///< owned v-process ids
    std::optional<std::int64_t> decision;
    /// The round's snapshot (Figure 3 line 2): emulators act on the state
    /// they read at the top of the round, concurrently with one another —
    /// which is exactly how distinct first-value installs split groups.
    std::vector<int> snapshot_history;
  };

  enum class IterResult { kActed, kDecided, kStalled };

  /// Phase A of a round: adopt decisions, migrate the label, snapshot h(l).
  void snapshot(EmulatorState& emulator);
  /// Phase B: act on the snapshot.
  IterResult iterate(EmulatorState& emulator);
  // Steps vp with the emulator's label exposed; records the log entry.
  sim::TraceEvent step_vp(EmulatorState& emulator, int vp);
  bool vp_active(const EmulatorState& emulator, int vp) const;
  bool adopt_decision_if_any(EmulatorState& emulator);

  // Figure 5.
  bool can_rebalance(EmulatorState& emulator, const std::vector<int>& history);
  // Figure 6; returns false on stall.
  bool update_cas(EmulatorState& emulator, const std::vector<int>& history);

  int count_suspended_unreleased(const Label& label, int from, int to) const;
  /// Successful c&s operations already emulated (releases + direct installs)
  /// on (from -> to) with labels compatible with `label`.
  int count_successes(const Label& label, int from, int to) const;

  EmuParams params_;
  sim::SimEnv env_;
  Board board_;
  LabelForest forest_;
  Label current_step_label_{0};  ///< exposed to v-process bodies
  std::vector<std::optional<std::int64_t>> vp_decisions_;
  std::vector<bool> vp_suspended_;
  std::vector<EmulatorState> emulators_;
  std::vector<Suspension> suspensions_;
  /// (label, from, to) per emulated successful c&s.
  std::vector<std::tuple<Label, int, int>> successes_;
  std::vector<VpStep> step_log_;
  std::vector<EmuEvent> events_;
  EmuStats stats_;
  int total_vps_ = 0;
};

}  // namespace bss::emu
