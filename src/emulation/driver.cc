#include "emulation/driver.h"

#include <algorithm>
#include <map>

#include "core/first_value_tree.h"
#include "util/checked.h"

namespace bss::emu {

namespace {

// ------------------------------------------------------------ vp adapters

/// ElectionMemory implementation over the emulated world: reads/writes go to
/// the tagged Board; c&s results are injected by the driver.
class EmulatedElectionMemory {
 public:
  EmulatedElectionMemory(const VpHarness& harness, sim::Ctx& ctx)
      : harness_(harness), ctx_(&ctx) {}

  int k() const { return harness_.k; }

  int cas(int expect, int next) {
    ctx_->sync({"cas", "cas", expect, next});
    const std::int64_t result = ctx_->take_injection();
    ctx_->note_result(result);
    return checked_cast<int>(result);
  }

  int read_confirm(int stage) const {
    const std::string reg = "confirm[" + std::to_string(stage) + "]";
    ctx_->sync({reg, "read", 0, 0});
    const int value = checked_cast<int>(
        harness_.board->read(reg, *harness_.current_label).value_or(0));
    ctx_->note_result(value);
    return value;
  }

  void write_confirm(int stage, int symbol) {
    const std::string reg = "confirm[" + std::to_string(stage) + "]";
    ctx_->sync({reg, "write", symbol, 0});
    harness_.board->write(reg, *harness_.current_label, symbol);
  }

  std::int64_t read_announce(std::uint64_t slot) const {
    const std::string reg = "announce[" + std::to_string(slot) + "]";
    ctx_->sync({reg, "read", 0, 0});
    const std::int64_t value =
        harness_.board->read(reg, *harness_.current_label)
            .value_or(bss::core::kNoId);
    ctx_->note_result(value);
    return value;
  }

  void write_announce(std::uint64_t slot, std::int64_t id) {
    const std::string reg = "announce[" + std::to_string(slot) + "]";
    ctx_->sync({reg, "write", id, 0});
    harness_.board->write(reg, *harness_.current_label, id);
  }

 private:
  VpHarness harness_;
  sim::Ctx* ctx_;
};

static_assert(bss::core::ElectionMemory<EmulatedElectionMemory>);

}  // namespace

VpFactory fvt_vp_factory() {
  return [](int vp, const VpHarness& harness) {
    return [vp, harness](sim::Ctx& ctx) {
      EmulatedElectionMemory memory(harness, ctx);
      const auto outcome = bss::core::fvt_elect(
          memory, static_cast<std::uint64_t>(vp), 1000 + vp);
      (*harness.decisions)[static_cast<std::size_t>(vp)] = outcome.leader;
    };
  };
}

VpFactory token_race_factory(int rounds) {
  return [rounds](int vp, const VpHarness& harness) {
    return [vp, rounds, harness](sim::Ctx& ctx) {
      const int k = harness.k;
      for (int round = 0; round < rounds; ++round) {
        const int from = round % k;
        const int to = (round + 1) % k;
        ctx.sync({"cas", "cas", from, to});
        const std::int64_t seen = ctx.take_injection();
        ctx.note_result(seen);
        const std::string reg = "race[" + std::to_string(vp) + "]";
        ctx.sync({reg, "write", seen, 0});
        harness.board->write(reg, *harness.current_label, seen);
      }
      (*harness.decisions)[static_cast<std::size_t>(vp)] = vp;
    };
  };
}

// --------------------------------------------------------------- the driver

EmulationDriver::EmulationDriver(EmuParams params, const VpFactory& factory)
    : params_(params),
      env_({.step_limit = params.step_limit}),
      forest_(params.k) {
  expects(params_.m >= 1, "emulation needs emulators");
  expects(params_.vps_per_emulator >= 0, "negative vps per emulator");
  total_vps_ = params_.m * params_.vps_per_emulator;
  expects(total_vps_ >= 1, "emulation needs at least one v-process");
  vp_decisions_.resize(static_cast<std::size_t>(total_vps_));
  vp_suspended_.assign(static_cast<std::size_t>(total_vps_), false);

  VpHarness harness;
  harness.k = params_.k;
  harness.board = &board_;
  harness.current_label = &current_step_label_;
  harness.decisions = &vp_decisions_;
  for (int vp = 0; vp < total_vps_; ++vp) {
    env_.add_process(factory(vp, harness));
  }

  emulators_.resize(static_cast<std::size_t>(params_.m));
  int next_vp = 0;
  for (int id = 0; id < params_.m; ++id) {
    EmulatorState& emulator = emulators_[static_cast<std::size_t>(id)];
    emulator.id = id;
    for (int i = 0; i < params_.vps_per_emulator; ++i) {
      emulator.vps.push_back(next_vp++);
    }
  }
}

EmulationDriver::~EmulationDriver() { env_.finish(); }

bool EmulationDriver::vp_active(const EmulatorState&, int vp) const {
  return !vp_suspended_[static_cast<std::size_t>(vp)] && env_.is_parked(vp);
}

sim::TraceEvent EmulationDriver::step_vp(EmulatorState& emulator, int vp) {
  current_step_label_ = emulator.label;
  const sim::TraceEvent event = env_.step_process(vp);
  VpStep record;
  record.vp = vp;
  record.emulator = emulator.id;
  record.label = emulator.label;
  record.desc = event.desc;
  record.result = event.result;
  record.has_result = event.has_result;
  step_log_.push_back(std::move(record));
  ++stats_.vp_steps;
  // Surface algorithm-A invariant violations immediately: they mean the
  // emulated world handed A an impossible observation.
  if (env_.is_finished(vp) &&
      env_.outcome_of(vp) == sim::ProcOutcome::kFailed) {
    throw InvariantError("v-process " + std::to_string(vp) +
                         " failed inside algorithm A: " + env_.error_of(vp));
  }
  return event;
}

bool EmulationDriver::adopt_decision_if_any(EmulatorState& emulator) {
  if (emulator.decision.has_value()) return true;
  for (const int vp : emulator.vps) {
    if (env_.is_finished(vp) &&
        vp_decisions_[static_cast<std::size_t>(vp)].has_value()) {
      emulator.decision = vp_decisions_[static_cast<std::size_t>(vp)];
      return true;
    }
  }
  return false;
}

int EmulationDriver::count_suspended_unreleased(const Label& label, int from,
                                                int to) const {
  int count = 0;
  for (const Suspension& suspension : suspensions_) {
    if (!suspension.released && suspension.from == from &&
        suspension.to == to && labels_compatible(suspension.label, label)) {
      ++count;
    }
  }
  return count;
}

int EmulationDriver::count_successes(const Label& label, int from,
                                     int to) const {
  int count = 0;
  for (const auto& [success_label, success_from, success_to] : successes_) {
    if (success_from == from && success_to == to &&
        labels_compatible(success_label, label)) {
      ++count;
    }
  }
  return count;
}

ExcessGraph EmulationDriver::excess_for(const Label& label) const {
  ExcessGraph graph(params_.k);
  for (const Suspension& suspension : suspensions_) {
    if (!suspension.released &&
        labels_compatible(suspension.label, label)) {
      graph.add_weight(suspension.from, suspension.to, 1);
    }
  }
  const std::vector<int> history = forest_.compute_history(label);
  for (int from = 0; from < params_.k; ++from) {
    for (int to = 0; to < params_.k; ++to) {
      if (from == to) continue;
      const int demand = LabelForest::transition_count(history, from, to) -
                         count_successes(label, from, to);
      graph.add_weight(from, to, -demand);
    }
  }
  return graph;
}

bool EmulationDriver::can_rebalance(EmulatorState& emulator,
                                    const std::vector<int>& history) {
  for (Suspension& suspension : suspensions_) {
    if (suspension.released || suspension.emulator != emulator.id) continue;
    if (!labels_compatible(suspension.label, emulator.label)) continue;
    // Transitions that appeared after this suspension.
    int after = 0;
    for (std::size_t i = std::max<std::size_t>(
             suspension.history_len_at_suspend, 1);
         i < history.size(); ++i) {
      if (history[i - 1] == suspension.from && history[i] == suspension.to) {
        ++after;
      }
    }
    const int available =
        LabelForest::transition_count(history, suspension.from,
                                      suspension.to) -
        count_successes(emulator.label, suspension.from, suspension.to);
    if (after < 1 || available < params_.release_margin) continue;
    // Figure 5 condition (3): a replacement to keep the edge stocked.
    int replacement = -1;
    for (const int vp : emulator.vps) {
      if (!vp_active(emulator, vp)) continue;
      const auto& op = env_.pending_of(vp);
      if (op.op == "cas" && op.arg0 == suspension.from &&
          op.arg1 == suspension.to) {
        replacement = vp;
        break;
      }
    }
    if (replacement == -1) continue;
    // Swap: suspend the replacement, release and run the suspended one.
    vp_suspended_[static_cast<std::size_t>(replacement)] = true;
    suspensions_.push_back({replacement, emulator.id, suspension.from,
                            suspension.to, emulator.label, history.size(),
                            false});
    ++stats_.suspensions;
    suspension.released = true;
    successes_.emplace_back(emulator.label, suspension.from, suspension.to);
    vp_suspended_[static_cast<std::size_t>(suspension.vp)] = false;
    ++stats_.releases;
    events_.push_back({EmuEventKind::kRelease, emulator.id, emulator.label,
                       "release vp" + std::to_string(suspension.vp) + " cas(" +
                           std::to_string(suspension.from) + "->" +
                           std::to_string(suspension.to) + ")"});
    env_.inject(suspension.vp, suspension.from);  // success returns `from`
    step_vp(emulator, suspension.vp);
    return true;
  }
  return false;
}

bool EmulationDriver::update_cas(EmulatorState& emulator,
                                 const std::vector<int>& history) {
  const int cs = history.back();
  // Most popular next value among active v-processes poised on cas(cs -> x).
  std::map<int, int> popularity;
  for (const int vp : emulator.vps) {
    if (!vp_active(emulator, vp)) continue;
    const auto& op = env_.pending_of(vp);
    if (op.op == "cas" && op.arg0 == cs) {
      ++popularity[checked_cast<int>(op.arg1)];
    }
  }
  if (popularity.empty()) return false;
  int x = -1;
  int best = 0;
  for (const auto& [value, count] : popularity) {
    if (count > best) {
      best = count;
      x = value;
    }
  }

  const bool x_used =
      std::find(history.begin(), history.end(), x) != history.end();
  GroupTree* tree = forest_.find(emulator.label);
  TreeNode* rightmost = tree->rightmost();
  // Stale snapshot: another emulator extended the history since we read it.
  // A real concurrent update's c&s would fail here; retry next round.
  if (rightmost->symbol != cs) return false;
  const ExcessGraph graph = excess_for(emulator.label);

  bool installed = false;
  bool direct_edge = false;
  if (x_used) {
    if (params_.direct_install) {
      // Relaxed mode: the installing v-process itself (active, poised on
      // cas(cs -> x)) performs the transition, so the new node chains under
      // the true rightmost with empty splices.  Chaining (never attaching
      // under an ancestor) means the DFS never returns through an
      // unverified ToParent — what keeps this mode sound without the
      // paper's suspended-backing invariant.
      tree->attach(rightmost, x, {}, {});
      direct_edge = true;
      installed = true;
      events_.push_back({EmuEventKind::kInstall, emulator.id, emulator.label,
                         "chain " + std::to_string(x) + " under " +
                             std::to_string(cs)});
    } else {
      // Figure 6 threshold walk: attach x to the deepest ancestor whose
      // excess cycle through (ancestor, x) is wide enough.  An ancestor
      // whose own symbol is x cannot host the new node (the splice would
      // be a self-loop); skip past it.
      for (TreeNode* parent = rightmost; parent != nullptr;
           parent = parent->parent) {
        if (parent->symbol == x) continue;
        const auto cycle = best_cycle(graph, parent->symbol, x);
        if (!cycle.has_value()) continue;
        const std::int64_t threshold = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(params_.threshold_slope) *
                   parent->depth());
        if (cycle->width < threshold) continue;
        std::vector<int> from_parent(cycle->a_to_x.begin() + 1,
                                     cycle->a_to_x.end() - 1);
        std::vector<int> to_parent(cycle->x_to_a.begin() + 1,
                                   cycle->x_to_a.end() - 1);
        direct_edge = parent == rightmost && from_parent.empty();
        tree->attach(parent, x, std::move(from_parent), std::move(to_parent));
        events_.push_back({EmuEventKind::kInstall, emulator.id,
                           emulator.label,
                           "attach " + std::to_string(x) + " under " +
                               std::to_string(parent->symbol)});
        installed = true;
        break;
      }
      if (!installed) return false;  // no ancestor admits x: stall
    }
  } else {
    // Fresh value: activate a new group tree (label extension; a split when
    // sibling groups activate different fresh values).  Another emulator of
    // our group may have activated the same value from the same snapshot —
    // then we just join it (the paper's concurrent-activation case) and
    // must NOT install a second time.
    Label extended = emulator.label;
    extended.push_back(x);
    const bool fresh_activation = forest_.find(extended) == nullptr;
    if (fresh_activation && !params_.direct_install &&
        graph.weight(tree->root()->symbol, x) < 1) {
      return false;  // no suspended backing for root -> x: stall
    }
    forest_.activate(extended);
    emulator.label = std::move(extended);
    if (fresh_activation) {
      direct_edge = rightmost == tree->root();
      ++stats_.splits;
      installed = true;
      events_.push_back({EmuEventKind::kSplit, emulator.id, emulator.label,
                         "activate first-value " + std::to_string(x)});
    }
  }
  if (installed) ++stats_.installs;

  // Realize the install: with direct_install and a direct edge from the old
  // current value, the installing v-process itself succeeds; otherwise the
  // transitions stay owed to suspended v-processes (CanRebalance pays them).
  bool success_realized = false;
  if (params_.direct_install && direct_edge) {
    for (const int vp : emulator.vps) {
      if (!vp_active(emulator, vp)) continue;
      const auto& op = env_.pending_of(vp);
      if (op.op == "cas" && op.arg0 == cs && op.arg1 == x) {
        successes_.emplace_back(emulator.label, cs, x);
        env_.inject(vp, cs);  // success: returns the previous value
        step_vp(emulator, vp);
        success_realized = true;
        break;
      }
    }
  }
  (void)success_realized;

  // Figure 6 line 15: fail every remaining active cas with the new value.
  // A pending cas whose EXPECTED value is x would succeed on the real
  // register; it is the next round's install candidate, not a failure —
  // leave it parked.
  for (const int vp : emulator.vps) {
    if (!vp_active(emulator, vp)) continue;
    const auto& op = env_.pending_of(vp);
    if (op.op == "cas" && op.arg0 != x) {
      env_.inject(vp, x);
      step_vp(emulator, vp);
    }
  }
  return true;
}

void EmulationDriver::snapshot(EmulatorState& emulator) {
  // Label migration (Figure 4 lines 1-2): if our tree is no longer a leaf,
  // follow the activations down.
  const Label leaf = forest_.extend_to_leaf(emulator.label);
  if (leaf != emulator.label) {
    events_.push_back({EmuEventKind::kMigrate, emulator.id, leaf,
                       "migrate from " + label_string(emulator.label)});
    emulator.label = leaf;
  }
  emulator.snapshot_history = forest_.compute_history(emulator.label);
}

EmulationDriver::IterResult EmulationDriver::iterate(EmulatorState& emulator) {
  if (adopt_decision_if_any(emulator)) return IterResult::kDecided;

  const std::vector<int>& history = emulator.snapshot_history;
  const int cs = history.back();

  bool acted = false;
  // Suspension quota (Figure 3 lines 4-5).
  std::map<std::pair<int, int>, std::vector<int>> poised;
  for (const int vp : emulator.vps) {
    if (!vp_active(emulator, vp)) continue;
    const auto& op = env_.pending_of(vp);
    if (op.op == "cas") {
      poised[{checked_cast<int>(op.arg0), checked_cast<int>(op.arg1)}]
          .push_back(vp);
    }
  }
  for (const auto& [edge, vps] : poised) {
    if (checked_cast<int>(vps.size()) < params_.suspend_trigger) continue;
    bool mine_suspended = false;
    for (const Suspension& suspension : suspensions_) {
      if (!suspension.released && suspension.emulator == emulator.id &&
          suspension.from == edge.first && suspension.to == edge.second) {
        mine_suspended = true;
        break;
      }
    }
    if (mine_suspended) continue;
    const int quota =
        std::min<int>(params_.suspend_quota, checked_cast<int>(vps.size()));
    for (int i = 0; i < quota; ++i) {
      const int vp = vps[static_cast<std::size_t>(i)];
      vp_suspended_[static_cast<std::size_t>(vp)] = true;
      suspensions_.push_back({vp, emulator.id, edge.first, edge.second,
                              emulator.label, history.size(), false});
      ++stats_.suspensions;
      events_.push_back({EmuEventKind::kSuspend, emulator.id, emulator.label,
                         "suspend vp" + std::to_string(vp) + " cas(" +
                             std::to_string(edge.first) + "->" +
                             std::to_string(edge.second) + ")"});
      acted = true;
    }
  }

  // EmulateSimpleOp (Figure 3 lines 6-7): reads, writes and failing cas.
  for (const int vp : emulator.vps) {
    if (!vp_active(emulator, vp)) continue;
    const auto& op = env_.pending_of(vp);
    const bool failing_cas = op.op == "cas" && op.arg0 != cs;
    const bool simple = op.op != "cas" || failing_cas;
    if (!simple) continue;
    if (failing_cas) env_.inject(vp, cs);
    step_vp(emulator, vp);
    return IterResult::kActed;
  }

  if (can_rebalance(emulator, history)) return IterResult::kActed;
  if (update_cas(emulator, history)) return IterResult::kActed;
  return acted ? IterResult::kActed : IterResult::kStalled;
}

EmuStats EmulationDriver::run() {
  env_.start();
  // A v-process that failed before its first shared operation means the
  // inputs are impossible for algorithm A (e.g. more slots than capacity);
  // surface it rather than silently starving an emulator.
  for (int vp = 0; vp < total_vps_; ++vp) {
    if (env_.is_finished(vp) &&
        env_.outcome_of(vp) == sim::ProcOutcome::kFailed) {
      throw InvariantError("v-process " + std::to_string(vp) +
                           " rejected its inputs: " + env_.error_of(vp));
    }
  }
  stats_ = EmuStats{};
  stats_.decisions.resize(static_cast<std::size_t>(params_.m));

  for (int round = 0; round < params_.max_rounds; ++round) {
    stats_.rounds = round + 1;
    bool progress = false;
    bool all_decided = true;
    // Phase A: everyone snapshots the shared state (Figure 3 line 2)...
    for (EmulatorState& emulator : emulators_) {
      if (!emulator.decision.has_value()) snapshot(emulator);
    }
    // ...phase B: everyone acts on its snapshot.  Emulators in the same
    // group acting on one snapshot model the paper's concurrent updates —
    // in particular, simultaneous installs of different fresh values are
    // what splits groups.
    for (EmulatorState& emulator : emulators_) {
      if (emulator.decision.has_value()) continue;
      const IterResult result = iterate(emulator);
      if (result != IterResult::kStalled) progress = true;
      if (!emulator.decision.has_value()) all_decided = false;
    }
    if (all_decided) {
      stats_.completed = true;
      break;
    }
    if (!progress) {
      stats_.stalled = true;
      break;
    }
  }
  if (!stats_.completed && !stats_.stalled) stats_.stalled = true;

  env_.finish();
  std::vector<std::int64_t> distinct;
  for (std::size_t id = 0; id < emulators_.size(); ++id) {
    stats_.decisions[id] = emulators_[id].decision;
    stats_.final_labels.push_back(emulators_[id].label);
    if (emulators_[id].decision.has_value() &&
        std::find(distinct.begin(), distinct.end(),
                  *emulators_[id].decision) == distinct.end()) {
      distinct.push_back(*emulators_[id].decision);
    }
  }
  stats_.distinct_decisions = checked_cast<int>(distinct.size());
  stats_.tree_count = forest_.tree_count();
  return stats_;
}

}  // namespace bss::emu
