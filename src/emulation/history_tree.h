// The history data structure of Section 3: the tree-of-trees T.
//
// Each node of T is a "small tree" t_l, one per group label l; the label of
// a group is the sequence of first-values its run has installed in the
// compare&swap (all labels start with ⊥).  Each small tree records how the
// group's run revisits previously-used values: a node per appended symbol,
// with FromParent/ToParent splice strings — the short value sequences the
// register passes through when moving between the node's symbol and its
// parent's (drawn from excess-graph paths, i.e. backed by suspended
// v-processes).
//
// The history h(l) of the run labeled l is the concatenation of the
// depth-first traversals of the small trees on the path from t_⊥ to t_l,
// the last one truncated at its rightmost leaf (Figure 4): for each edge
// traversed downward we emit FromParent ++ child symbol, upward ToParent ++
// parent symbol — so one tree node can contribute its symbol to the history
// several times, which is exactly how bounded-size values get reused without
// re-splitting groups.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "emulation/board.h"

namespace bss::emu {

struct TreeNode {
  int symbol = 0;
  /// Intermediate symbols the register passes from parent->symbol (both
  /// endpoints excluded); empty = direct transition.
  std::vector<int> from_parent;
  /// Intermediate symbols from symbol->parent.
  std::vector<int> to_parent;
  TreeNode* parent = nullptr;
  std::vector<std::unique_ptr<TreeNode>> children;

  int depth() const;
};

/// One small tree t_l.
class GroupTree {
 public:
  explicit GroupTree(Label label);

  const Label& label() const { return label_; }
  TreeNode* root() { return &root_; }
  const TreeNode* root() const { return &root_; }

  /// The DFS-last node: the node holding the run's current symbol.
  TreeNode* rightmost();
  const TreeNode* rightmost() const;

  /// Attaches `symbol` as the new last child of `parent` with the given
  /// splice strings; it becomes the rightmost node.
  TreeNode* attach(TreeNode* parent, int symbol, std::vector<int> from_parent,
                   std::vector<int> to_parent);

  /// Appends this tree's Figure-4 DFS sequence to `history`; when
  /// `truncate_at_rightmost`, stops at the rightmost node's visit (the last
  /// tree on the label path ends at the run's current value).
  void append_history(std::vector<int>& history,
                      bool truncate_at_rightmost) const;

  int node_count() const;

 private:
  Label label_;
  TreeNode root_;
};

/// The shared tree T: all group trees, indexed by label.
class LabelForest {
 public:
  explicit LabelForest(int k);

  int k() const { return k_; }

  GroupTree* find(const Label& label);
  const GroupTree* find(const Label& label) const;

  /// Activates t_{label}; the label must extend an existing label by one
  /// fresh symbol.  Returns the new tree (or the existing one if another
  /// emulator already activated it — the paper's concurrent-activation case).
  GroupTree* activate(const Label& label);

  /// Figure 4 line 1: the longest activated label having `label` as prefix
  /// (following first children when branching; deterministic: smallest
  /// next symbol).  Emulators whose tree is no longer a leaf migrate down.
  Label extend_to_leaf(const Label& label) const;

  /// h(l): the full value history of the run labeled l.
  std::vector<int> compute_history(const Label& label) const;

  /// Count of (from, to) transitions in h(l).
  static int transition_count(const std::vector<int>& history, int from,
                              int to);

  std::vector<Label> active_labels() const;
  std::size_t tree_count() const { return trees_.size(); }

 private:
  int k_;
  std::map<Label, std::unique_ptr<GroupTree>> trees_;
};

}  // namespace bss::emu
