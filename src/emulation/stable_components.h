// Stable and super-stable components (Definitions 2 and 3).
//
// The appendix's induction (Lemma 1.2, clause 3) describes the excess graph
// of a run as "a group of 0 or more stable set components connected by a
// one-way path of weight k or more".  A *stable component* is a strongly
// connected chunk of the excess graph whose internal connectivity degrades
// gracefully as the weight threshold rises: raising the threshold by one
// more μ-level may split it into at most one more piece.  Super-stability
// (Definition 3) is the same property with one level of slack — the
// headroom the induction spends when an update consumes suspended
// v-processes.
//
// Thresholds: μ_1 = 0 and μ_x = Σ_{i=2}^x m^i (the paper's Σ with m = the
// emulator count; the extended abstract's OCR garbles some subscripts — the
// reading implemented here is documented next to each formula and is the
// one that makes Definition 2's arithmetic self-consistent and Lemma 1.3's
// base case ("a two-node C_1 component is always super stable") true).
//
// This module computes thresholded SCC decompositions and the two
// predicates, and exposes a decomposition check used on live emulation
// states.
#pragma once

#include <cstdint>
#include <vector>

#include "emulation/excess.h"

namespace bss::emu {

/// μ_x for the given emulator count m: μ_1 = 0, μ_x = Σ_{i=2}^x m^i.
std::int64_t mu_threshold(int x, int m);

/// Strongly connected components of the excess graph restricted to the node
/// subset `nodes` and to edges of weight >= min_weight.  Singleton
/// components are included.  Deterministic order (by smallest member).
std::vector<std::vector<int>> thresholded_components(
    const ExcessGraph& graph, const std::vector<int>& nodes,
    std::int64_t min_weight);

/// Definition 2: `nodes` (a C_1 component of G_1, i.e. strongly connected at
/// weight >= 1) of size j is STABLE iff for every i with k-j+2 <= i <= k it
/// splits into at most i-(k-j+1) maximal components at threshold
/// μ_{k-j+i}.  A single node is stable.
bool is_stable_component(const ExcessGraph& graph,
                         const std::vector<int>& nodes, int k, int m);

/// Definition 3: super-stable = the same with one level of slack (the range
/// starts at k-j+3 and the budget is i-(k-j+2)); a two-node component is
/// always super stable.
bool is_super_stable_component(const ExcessGraph& graph,
                               const std::vector<int>& nodes, int k, int m);

struct StableDecomposition {
  std::vector<std::vector<int>> components;  ///< C_1 components of G_1
  bool all_stable = false;                   ///< every component stable
};

/// Decomposes the subgraph induced by `nodes` into its weight->=1 strongly
/// connected components and checks each for stability — the executable form
/// of Lemma 1.2 clause 3's structural claim.
StableDecomposition analyze_stability(const ExcessGraph& graph,
                                      const std::vector<int>& nodes, int k,
                                      int m);

}  // namespace bss::emu
