// Emulated read/write registers for algorithm A — the paper's §3.1
// "R/W registers" construction.
//
// In the reduction, the emulators have only read/write memory, so each
// register of A is implemented as an append-only list of (label, value)
// pairs: a write appends the writer's current label with the value; a read
// returns the latest value whose label is a prefix OR an extension of the
// reading emulator's label — writes from a diverged group (incomparable
// label) are invisible, which is what keeps the per-group runs independent
// while sharing their common prefix.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bss::emu {

/// A label: the sequence of first-values of a group's run, starting with ⊥
/// (symbol 0).  Labels form a tree; two labels are compatible iff one is a
/// prefix of the other.
using Label = std::vector<int>;

bool is_label_prefix(const Label& prefix, const Label& full);
bool labels_compatible(const Label& a, const Label& b);
std::string label_string(const Label& label);

class Board {
 public:
  struct Entry {
    Label label;
    std::int64_t value;
  };

  void write(const std::string& reg, const Label& label, std::int64_t value);

  /// Latest value whose label is compatible with `label`; nullopt if no
  /// compatible write exists (the register's initial state).
  std::optional<std::int64_t> read(const std::string& reg,
                                   const Label& label) const;

  /// Number of writes ever performed on `reg` (instrumentation).
  std::size_t write_count(const std::string& reg) const;
  std::size_t register_count() const { return registers_.size(); }

 private:
  std::map<std::string, std::vector<Entry>> registers_;
};

}  // namespace bss::emu
