#include "emulation/excess.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "util/checked.h"

namespace bss::emu {

ExcessGraph::ExcessGraph(int k)
    : k_(k), weights_(static_cast<std::size_t>(k) * static_cast<std::size_t>(k),
                      0) {
  expects(k >= 2, "excess graph needs k >= 2");
}

std::int64_t ExcessGraph::weight(int from, int to) const {
  return weights_[static_cast<std::size_t>(from * k_ + to)];
}

void ExcessGraph::set_weight(int from, int to, std::int64_t weight) {
  weights_[static_cast<std::size_t>(from * k_ + to)] = weight;
}

void ExcessGraph::add_weight(int from, int to, std::int64_t delta) {
  weights_[static_cast<std::size_t>(from * k_ + to)] += delta;
}

std::string ExcessGraph::to_string() const {
  std::ostringstream out;
  for (int from = 0; from < k_; ++from) {
    for (int to = 0; to < k_; ++to) {
      if (weight(from, to) != 0) {
        out << from << "->" << to << ":" << weight(from, to) << " ";
      }
    }
  }
  return out.str();
}

std::optional<std::vector<int>> path_with_min_weight(const ExcessGraph& graph,
                                                     int from, int to,
                                                     std::int64_t min_weight) {
  const int k = graph.k();
  if (from == to) return std::vector<int>{from};
  std::vector<int> parent(static_cast<std::size_t>(k), -2);
  parent[static_cast<std::size_t>(from)] = -1;
  std::vector<int> frontier{from};
  while (!frontier.empty()) {
    std::vector<int> next_frontier;
    for (const int node : frontier) {
      for (int next = 0; next < k; ++next) {
        if (next == node || graph.weight(node, next) < min_weight) continue;
        if (parent[static_cast<std::size_t>(next)] != -2) continue;
        parent[static_cast<std::size_t>(next)] = node;
        if (next == to) {
          std::vector<int> path;
          for (int at = to; at != -1; at = parent[static_cast<std::size_t>(at)]) {
            path.push_back(at);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        next_frontier.push_back(next);
      }
    }
    frontier = std::move(next_frontier);
  }
  return std::nullopt;
}

std::optional<CyclePaths> best_cycle(const ExcessGraph& graph, int a, int x) {
  if (a == x) {
    CyclePaths trivial;
    trivial.width = std::numeric_limits<std::int64_t>::max();
    trivial.a_to_x = {a};
    trivial.x_to_a = {a};
    return trivial;
  }
  // Candidate widths: the distinct positive edge weights, tried widest
  // first (k is tiny, so this is cheap and obviously correct).
  std::set<std::int64_t, std::greater<>> widths;
  for (int from = 0; from < graph.k(); ++from) {
    for (int to = 0; to < graph.k(); ++to) {
      if (from != to && graph.weight(from, to) > 0) {
        widths.insert(graph.weight(from, to));
      }
    }
  }
  for (const std::int64_t width : widths) {
    const auto forward = path_with_min_weight(graph, a, x, width);
    if (!forward.has_value()) continue;
    const auto backward = path_with_min_weight(graph, x, a, width);
    if (!backward.has_value()) continue;
    CyclePaths cycle;
    cycle.width = width;
    cycle.a_to_x = *forward;
    cycle.x_to_a = *backward;
    return cycle;
  }
  return std::nullopt;
}

}  // namespace bss::emu
