// Post-hoc verification of an emulation run — Lemma 1.2, operationalized.
//
// For every maximal label l the driver produced, the restricted operation
// sequence R|l (all v-process steps whose label is a prefix of l) must be a
// legal run of algorithm A.  The checks, mapped to the lemma's clauses:
//
//   (C1) read/write legality: every emulated register read in R|l returned
//        the value of the latest preceding write in R|l (clause 1 for
//        virtual read/write operations; the label-compatibility rule makes
//        all writes in R|l visible to all its readers);
//   (C2) history well-formedness: h(l) starts at ⊥, consecutive values
//        differ, and for a first-value algorithm is a permutation prefix
//        (clause 2: the history is the register's change list);
//   (C3) success accounting: every emulated successful c&s (a -> b) in R|l
//        is matched by an (a -> b) transition in h(l) — successes never
//        exceed transitions (clause 3 / the CanRebalance soundness);
//   (C4) c&s result soundness per v-process: a v-process's successful c&s
//        returned its expected value, and every result lies in the value
//        domain;
//   (C5) group agreement: emulators sharing a maximal label decided the
//        same value, and the number of distinct labels is at most (k-1)!
//        (the set-consensus bound the reduction delivers).
//
// C5 presumes A is a leader election (it is asserted only when
// `expect_agreement`); the token-race exerciser runs with it disabled.
#pragma once

#include <string>
#include <vector>

#include "emulation/driver.h"

namespace bss::emu {

struct ReductionVerdict {
  bool rw_legal = false;        // C1
  bool history_sound = false;   // C2
  bool matching_sound = false;  // C3
  bool cas_sound = false;       // C4
  bool groups_agree = false;    // C5 (vacuously true when not expected)
  std::string diagnosis;

  bool ok() const {
    return rw_legal && history_sound && matching_sound && cas_sound &&
           groups_agree;
  }
};

struct ReductionCheckOptions {
  bool expect_agreement = true;       ///< A is a leader election
  bool expect_first_value = true;     ///< A never reuses symbols (fvt)
};

ReductionVerdict verify_reduction(const EmulationDriver& driver,
                                  const EmuStats& stats,
                                  const ReductionCheckOptions& options = {});

}  // namespace bss::emu
