#include "emulation/reduction_check.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/checked.h"
#include "util/permutation.h"

namespace bss::emu {

namespace {

// Maximal labels among the emulators' final labels.
std::vector<Label> maximal_labels(const EmuStats& stats) {
  std::vector<Label> maximal;
  for (const Label& label : stats.final_labels) {
    bool dominated = false;
    for (const Label& other : stats.final_labels) {
      if (other.size() > label.size() && is_label_prefix(label, other)) {
        dominated = true;
        break;
      }
    }
    if (!dominated &&
        std::find(maximal.begin(), maximal.end(), label) == maximal.end()) {
      maximal.push_back(label);
    }
  }
  return maximal;
}

}  // namespace

ReductionVerdict verify_reduction(const EmulationDriver& driver,
                                  const EmuStats& stats,
                                  const ReductionCheckOptions& options) {
  ReductionVerdict verdict;
  std::ostringstream diagnosis;
  const int k = driver.forest().k();
  const std::vector<Label> labels = maximal_labels(stats);

  // ---- C1 + C4, per maximal label.
  verdict.rw_legal = true;
  verdict.cas_sound = true;
  verdict.matching_sound = true;
  for (const Label& label : labels) {
    std::map<std::string, std::int64_t> last_write;
    std::map<std::pair<int, int>, int> successes;
    for (const VpStep& step : driver.step_log()) {
      if (!is_label_prefix(step.label, label)) continue;
      if (step.desc.op == "write") {
        last_write[step.desc.object] = step.desc.arg0;
      } else if (step.desc.op == "read") {
        const auto it = last_write.find(step.desc.object);
        if (it != last_write.end() && step.has_result &&
            step.result != it->second) {
          verdict.rw_legal = false;
          diagnosis << "R|" << label_string(label) << ": read of "
                    << step.desc.object << " returned " << step.result
                    << " after write of " << it->second << "; ";
        }
      } else if (step.desc.op == "cas") {
        const int expect = checked_cast<int>(step.desc.arg0);
        const int next = checked_cast<int>(step.desc.arg1);
        if (!step.has_result || step.result < 0 || step.result >= k) {
          verdict.cas_sound = false;
          diagnosis << "cas result outside domain; ";
          continue;
        }
        if (step.result == expect && next != expect) {
          ++successes[{expect, next}];
        }
      }
    }
    // ---- C3: successes never exceed history transitions.
    const std::vector<int> history = driver.forest().compute_history(label);
    for (const auto& [edge, count] : successes) {
      const int transitions =
          LabelForest::transition_count(history, edge.first, edge.second);
      if (count > transitions) {
        verdict.matching_sound = false;
        diagnosis << "R|" << label_string(label) << ": " << count
                  << " successful cas(" << edge.first << "->" << edge.second
                  << ") but only " << transitions << " history transitions; ";
      }
    }
  }

  // ---- C2: history shape, per maximal label.
  verdict.history_sound = true;
  for (const Label& label : labels) {
    const std::vector<int> history = driver.forest().compute_history(label);
    if (history.empty() || history.front() != 0) {
      verdict.history_sound = false;
      diagnosis << "history does not start at ⊥; ";
      continue;
    }
    for (std::size_t i = 1; i < history.size(); ++i) {
      if (history[i] == history[i - 1]) {
        verdict.history_sound = false;
        diagnosis << "history repeats " << history[i] << " consecutively; ";
      }
      if (history[i] < 0 || history[i] >= k) {
        verdict.history_sound = false;
        diagnosis << "history symbol outside domain; ";
      }
    }
    if (options.expect_first_value &&
        !bss::is_permutation_prefix(
            std::vector<int>(history.begin() + 1, history.end()), 1, k)) {
      verdict.history_sound = false;
      diagnosis << "first-value history " << label_string(history)
                << " reuses a symbol; ";
    }
  }

  // ---- C5: group agreement and the (k-1)! label bound.
  verdict.groups_agree = true;
  const std::uint64_t label_bound = factorial_u64(k - 1);
  if (labels.size() > label_bound) {
    verdict.groups_agree = false;
    diagnosis << labels.size() << " maximal labels exceed (k-1)! = "
              << label_bound << "; ";
  }
  if (options.expect_agreement) {
    for (const Label& label : labels) {
      std::set<std::int64_t> decisions;
      for (std::size_t id = 0; id < stats.final_labels.size(); ++id) {
        if (stats.final_labels[id] == label &&
            stats.decisions[id].has_value()) {
          decisions.insert(*stats.decisions[id]);
        }
      }
      if (decisions.size() > 1) {
        verdict.groups_agree = false;
        diagnosis << "group " << label_string(label) << " decided "
                  << decisions.size() << " values; ";
      }
    }
    if (stats.distinct_decisions >
        checked_cast<int>(std::min<std::uint64_t>(label_bound, 1000000))) {
      verdict.groups_agree = false;
      diagnosis << stats.distinct_decisions
                << " distinct decisions exceed the (k-1)! set-consensus "
                   "bound; ";
    }
  }

  verdict.diagnosis = diagnosis.str();
  return verdict;
}

}  // namespace bss::emu
