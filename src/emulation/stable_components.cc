#include "emulation/stable_components.h"

#include <algorithm>

#include "util/checked.h"

namespace bss::emu {

std::int64_t mu_threshold(int x, int m) {
  expects(x >= 1, "mu threshold index starts at 1");
  expects(m >= 1, "emulator count must be positive");
  std::int64_t total = 0;
  std::int64_t power = static_cast<std::int64_t>(m);  // m^1
  for (int i = 2; i <= x; ++i) {
    expects(power <= (std::int64_t{1} << 56) / m, "mu threshold overflows");
    power *= m;  // m^i
    total += power;
  }
  return total;
}

namespace {

// Reachability within `nodes` using edges of weight >= min_weight.
bool reaches(const ExcessGraph& graph, const std::vector<int>& nodes,
             std::int64_t min_weight, int from, int to) {
  if (from == to) return true;
  std::vector<int> stack{from};
  std::vector<bool> seen(static_cast<std::size_t>(graph.k()), false);
  seen[static_cast<std::size_t>(from)] = true;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    for (const int next : nodes) {
      if (seen[static_cast<std::size_t>(next)] || next == node) continue;
      if (graph.weight(node, next) < min_weight) continue;
      if (next == to) return true;
      seen[static_cast<std::size_t>(next)] = true;
      stack.push_back(next);
    }
  }
  return false;
}

}  // namespace

std::vector<std::vector<int>> thresholded_components(
    const ExcessGraph& graph, const std::vector<int>& nodes,
    std::int64_t min_weight) {
  std::vector<std::vector<int>> components;
  std::vector<bool> assigned(static_cast<std::size_t>(graph.k()), false);
  for (const int seed : nodes) {
    if (assigned[static_cast<std::size_t>(seed)]) continue;
    std::vector<int> component;
    for (const int other : nodes) {
      if (assigned[static_cast<std::size_t>(other)]) continue;
      if (reaches(graph, nodes, min_weight, seed, other) &&
          reaches(graph, nodes, min_weight, other, seed)) {
        component.push_back(other);
      }
    }
    for (const int member : component) {
      assigned[static_cast<std::size_t>(member)] = true;
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

bool is_stable_component(const ExcessGraph& graph,
                         const std::vector<int>& nodes, int k, int m) {
  const int j = checked_cast<int>(nodes.size());
  if (j <= 1) return true;  // "a single node is also a stable component"
  for (int i = k - j + 2; i <= k; ++i) {
    const std::int64_t threshold = mu_threshold(k - j + i, m);
    const auto pieces = thresholded_components(graph, nodes, threshold);
    const int budget = i - (k - j + 1);
    if (checked_cast<int>(pieces.size()) > budget) return false;
  }
  return true;
}

bool is_super_stable_component(const ExcessGraph& graph,
                               const std::vector<int>& nodes, int k, int m) {
  const int j = checked_cast<int>(nodes.size());
  if (j <= 2) return true;  // "a C_1 component of two nodes is always a SSC"
  for (int i = k - j + 4; i <= k; ++i) {
    // Definition 3's range is "k-j+3 < i <= k" with budget i-(k-j+2).
    const std::int64_t threshold = mu_threshold(k - j + i, m);
    const auto pieces = thresholded_components(graph, nodes, threshold);
    const int budget = i - (k - j + 2);
    if (checked_cast<int>(pieces.size()) > budget) return false;
  }
  return true;
}

StableDecomposition analyze_stability(const ExcessGraph& graph,
                                      const std::vector<int>& nodes, int k,
                                      int m) {
  StableDecomposition decomposition;
  decomposition.components = thresholded_components(graph, nodes, 1);
  decomposition.all_stable = true;
  for (const auto& component : decomposition.components) {
    if (!is_stable_component(graph, component, k, m)) {
      decomposition.all_stable = false;
    }
  }
  return decomposition;
}

}  // namespace bss::emu
