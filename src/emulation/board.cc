#include "emulation/board.h"

#include <algorithm>

#include "util/permutation.h"

namespace bss::emu {

bool is_label_prefix(const Label& prefix, const Label& full) {
  if (prefix.size() > full.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), full.begin());
}

bool labels_compatible(const Label& a, const Label& b) {
  return is_label_prefix(a, b) || is_label_prefix(b, a);
}

std::string label_string(const Label& label) {
  return bss::label_to_string(label);
}

void Board::write(const std::string& reg, const Label& label,
                  std::int64_t value) {
  registers_[reg].push_back({label, value});
}

std::optional<std::int64_t> Board::read(const std::string& reg,
                                        const Label& label) const {
  const auto it = registers_.find(reg);
  if (it == registers_.end()) return std::nullopt;
  for (auto entry = it->second.rbegin(); entry != it->second.rend(); ++entry) {
    if (labels_compatible(entry->label, label)) return entry->value;
  }
  return std::nullopt;
}

std::size_t Board::write_count(const std::string& reg) const {
  const auto it = registers_.find(reg);
  return it == registers_.end() ? 0 : it->second.size();
}

}  // namespace bss::emu
