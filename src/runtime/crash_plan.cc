#include "runtime/crash_plan.h"

namespace bss::sim {

CrashPlan& CrashPlan::crash_before_op(int pid, std::uint64_t op_index) {
  const auto [it, inserted] = points_.try_emplace(pid, op_index);
  if (!inserted && op_index < it->second) it->second = op_index;
  return *this;
}

CrashPlan CrashPlan::random(int n, double p, std::uint64_t max_op,
                            bss::Rng& rng) {
  CrashPlan plan;
  for (int pid = 0; pid < n; ++pid) {
    if (rng.next_double() < p) {
      plan.crash_before_op(pid, max_op == 0 ? 0 : rng.next_below(max_op));
    }
  }
  return plan;
}

bool CrashPlan::should_crash(int pid, std::uint64_t steps_taken) const {
  const auto it = points_.find(pid);
  return it != points_.end() && steps_taken >= it->second;
}

}  // namespace bss::sim
