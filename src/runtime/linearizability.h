// Linearizability checking (Wing & Gong style) for interval histories.
//
// Primitive operations in the simulator are atomic by construction, but the
// objects BUILT from them — the AADGMS snapshot's multi-read scan(), the
// universal construction's multi-step invoke() — claim linearizability as a
// theorem.  This module checks it on concrete executions: each high-level
// operation is recorded as an interval [start, end] of global simulator
// steps with its payload and response, and the checker searches for a
// permutation of the operations that (a) respects real-time order (op A
// before op B whenever A.end < B.start) and (b) replays correctly through a
// sequential specification.
//
// Exponential in the worst case (it memoizes on {linearized set, state}),
// fine for the hundreds-of-ops histories the tests produce.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace bss::sim {

struct IntervalOp {
  int pid = -1;
  std::uint64_t start = 0;  ///< global step of the first underlying access
  std::uint64_t end = 0;    ///< global step of the last underlying access
  std::vector<std::int64_t> payload;   ///< operation arguments
  std::vector<std::int64_t> response;  ///< observed result
};

/// A sequential specification: applies `payload` to `state`, returns the
/// expected response.  State is an arbitrary int64 vector.
struct SequentialObjectSpec {
  std::vector<std::int64_t> initial_state;
  std::function<std::vector<std::int64_t>(std::vector<std::int64_t>& state,
                                          const std::vector<std::int64_t>&
                                              payload)>
      apply;
};

struct LinearizabilityResult {
  bool linearizable = false;
  /// Indices into the input history in linearization order (valid iff
  /// linearizable).
  std::vector<std::size_t> witness_order;
  std::uint64_t states_explored = 0;
  std::string detail;
};

LinearizabilityResult check_linearizable(const std::vector<IntervalOp>& history,
                                         const SequentialObjectSpec& spec,
                                         std::uint64_t max_states = 2'000'000);

/// Ready-made specs used by the tests and benches.
SequentialObjectSpec fetch_increment_spec();
/// payload {component, value} -> write; payload {} -> scan returning all n.
SequentialObjectSpec snapshot_spec(int components);
/// payload {1+v} -> enqueue v; payload {0} -> dequeue (response {-1} empty).
SequentialObjectSpec fifo_queue_spec();

}  // namespace bss::sim
