// SimEnv — the deterministic asynchronous shared-memory machine.
//
// Model: n sequential processes, each an arbitrary C++ callable, communicate
// only through shared objects (src/registers).  Every shared-object operation
// begins with Ctx::sync(), which *blocks the process* until the scheduler
// grants it the step; while everything is blocked the engine consults the
// Scheduler (the adversary) to choose who moves.  Exactly one process runs at
// a time, so each granted operation executes atomically — which is precisely
// the atomic-register/atomic-RMW model of Afek & Stupp (and Herlihy [10]).
//
// Determinism: the execution is a pure function of (process bodies, scheduler
// decisions, fault plan).  Schedulers are replayable, so every run in this
// repository can be reproduced from a seed.
//
// Fault model: run() takes a FaultPlan (fault_plan.h).  Fail-stop kills a
// parked process for good; crash-*restart* unwinds it (all private state —
// locals, program counter, the in-flight operation — is lost, shared
// registers persist) and re-enters its program through the restart hook
// registered with the two-argument add_process overload.  Spurious
// store-conditional failures are delivered to the LL/SC object through
// Ctx::take_sc_failure.
//
// Virtual time: the engine carries a logical clock (virtual_now, a plain
// uint64 of abstract ticks) that only timer operations move.  Ctx::now()
// reads it as a synced shared operation on the pseudo-object "@clock";
// Ctx::sleep_until(deadline) parks the process on a {"@clock", "timer"}
// operation whose *grant* advances the clock to max(now, deadline).  Because
// a timer firing is just another granted step, the scheduler — and therefore
// the DFS explorer — adversarially races timeouts against ordinary steps and
// faults with no extra machinery: a timer decision is a decision.  Footprints
// are declared like any register's ("read" reads @clock, "timer" writes it),
// so sleep-set POR and the access-ledger audit stay sound: two reads of the
// clock commute, everything else on @clock conflicts.
//
// Implementation: each process runs on its own std::thread but is gated by a
// binary semaphore; the engine holds a counting semaphore that each process
// releases when it reaches its next sync point (or finishes).  The threads
// are a control-flow convenience only — there is no actual data parallelism.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "audit/ledger.h"
#include "runtime/fault_plan.h"
#include "runtime/scheduler.h"
#include "runtime/trace.h"

namespace bss::obs {
class ObsSink;
}  // namespace bss::obs

namespace bss::sim {

class SimEnv;

/// Thrown inside a process body to unwind it when the crash plan (or engine
/// shutdown) kills the process.  Process bodies must not swallow it.
struct ProcessCrashed {};

/// Per-process handle passed to process bodies and shared objects.
class Ctx {
 public:
  int pid() const { return pid_; }
  std::uint64_t steps_taken() const { return steps_taken_; }
  /// 0 for the initial execution, +1 per crash-restart.  Survives restarts
  /// (it lives in the engine, not on the process's stack), so recovery code
  /// — and recovery *mutants* — can tell re-entries apart.
  int incarnation() const { return incarnation_; }
  /// Global step counter at the moment of the call — timestamps for interval
  /// histories (runtime/linearizability.h).  Stable while this process runs.
  std::uint64_t global_step() const;

  /// Reads the virtual clock as a synced shared operation on "@clock"
  /// (footprint: read).  The value is the logical tick count advanced only
  /// by granted timer operations, so it is deterministic per schedule.
  std::uint64_t now();

  /// Parks the process on a {"@clock", "timer", deadline} operation; when
  /// the scheduler grants it, the virtual clock jumps to
  /// max(virtual_now, deadline) and the new now is returned (footprint:
  /// write — timers conflict with every other @clock op, so POR never
  /// prunes a schedule that orders a timeout differently).  The scheduler
  /// may grant the timer at any point, which is exactly the asynchronous-
  /// model reading of a timeout: "at least until `deadline`, then whenever
  /// the adversary feels like it".
  std::uint64_t sleep_until(std::uint64_t deadline);

  /// Announces the pending operation and blocks until the scheduler grants
  /// this process its next step.  Called by shared objects at the start of
  /// every operation.  Throws ProcessCrashed if the process was killed.
  void sync(OpDesc desc);

  /// Records the result of the operation granted by the last sync(), for the
  /// trace.  Optional; at most once per sync.
  void note_result(std::int64_t result);

  /// Consumes the value injected by SimEnv::inject for the operation granted
  /// by the last sync().  Emulated objects (src/emulation) use this to let a
  /// driver dictate operation results; InvariantError if nothing was
  /// injected.
  std::int64_t take_injection();

  /// True iff the operation granted by the last sync() was marked as a
  /// spurious store-conditional failure (FaultPlan::fail_sc or
  /// SimEnv::inject_sc_failure).  Consuming clears the mark; the LL/SC
  /// object calls this once per SC.
  bool take_sc_failure();

  /// Checks out this process's access-ledger stamp for the grant window the
  /// last sync() opened.  Shared objects call token.read/write(name) on
  /// every load/store of shared state; with no observer attached (the
  /// default) the token is inert.  A token checked out with no window open
  /// (body code ahead of its first sync) carries AccessToken::kNoWindow —
  /// using it to touch shared state is exactly the unsynced access the
  /// auditor reports.
  audit::AccessToken access_token() const;

 private:
  friend class SimEnv;
  Ctx(SimEnv* env, int pid) : env_(env), pid_(pid) {}

  SimEnv* env_;
  int pid_;
  std::uint64_t steps_taken_ = 0;  // lifetime count; NOT reset by restarts
  int incarnation_ = 0;
};

enum class ProcOutcome {
  kFinished,   ///< body returned normally
  kCrashed,    ///< killed by the crash plan or engine shutdown
  kFailed,     ///< body threw a non-crash exception (a bug; message kept)
  kUnstarted,  ///< never scheduled (only possible with step limits)
};

struct RunReport {
  std::uint64_t total_steps = 0;
  bool step_limit_hit = false;
  std::vector<ProcOutcome> outcomes;       // indexed by pid
  std::vector<std::string> errors;         // non-empty for kFailed pids
  std::vector<std::uint64_t> steps_by_pid;
  std::vector<int> restarts_by_pid;        // crash-restarts survived, by pid

  int finished_count() const;
  int crashed_count() const;
  /// Processes that survived at least one crash-restart.
  int restarted_count() const;
  /// True iff no process failed with an exception and the step limit held.
  bool clean() const;
  std::string summary() const;
};

struct SimOptions {
  std::uint64_t step_limit = 10'000'000;
  bool record_trace = true;
};

class SimEnv {
 public:
  explicit SimEnv(SimOptions options = {});
  ~SimEnv();

  SimEnv(const SimEnv&) = delete;
  SimEnv& operator=(const SimEnv&) = delete;

  /// Registers a process body; returns its pid (dense, starting at 0).
  /// Bodies receive their Ctx and may capture shared objects by reference.
  int add_process(std::function<void(Ctx&)> body);

  /// Registers a crash-*restartable* process: after a restart fault, the
  /// process is re-entered through `restart_hook` (every local of the
  /// unwound body is gone; shared registers persist).  Recovery-safe
  /// programs simply pass their body again — recovery must be derivable
  /// from shared state plus the process's immutable inputs.
  int add_process(std::function<void(Ctx&)> body,
                  std::function<void(Ctx&)> restart_hook);

  /// True iff `pid` was registered with a restart hook.
  bool restart_supported(int pid) const;

  int process_count() const { return static_cast<int>(bodies_.size()); }

  /// Attaches an access-ledger observer (src/audit) before the run: the
  /// engine brackets every granted operation with on_window_begin/end and
  /// instrumented objects stamp their accesses through Ctx::access_token().
  /// Observers are passive — attaching one changes neither scheduling nor
  /// results — and must outlive the run.  Call before run()/start().
  void set_access_observer(audit::AccessObserver* observer);

  /// Attaches a telemetry sink (src/obs) before the run: fault injections
  /// (kill_process, restart_process, inject_sc_failure) emit sim.crash /
  /// sim.restart / sim.sc_failure events stamped with the global step
  /// counter.  Passive, like the access observer: attaching one changes
  /// neither scheduling nor results.  The engine's own shutdown kills in
  /// finish() are NOT events — only explicit injections are.  The explorer
  /// attaches this on counterexample replays only (exploration re-runs the
  /// factory thousands of times and would flood the bounded log).
  void set_obs_sink(obs::ObsSink* sink);

  /// Executes the system to quiescence (all processes finished/crashed) or
  /// to the step limit.  May be called exactly once (and not after start()).
  /// CrashPlan call sites keep working through the implicit FaultPlan lift.
  RunReport run(Scheduler& scheduler, const FaultPlan& faults = {});

  // --- Incremental mode (used by the Section 3 emulation driver) ---
  // start() launches the processes up to their first sync point; the caller
  // then inspects pending operations, optionally injects results, and steps
  // chosen processes one operation at a time.  finish() kills whatever is
  // still parked.  Mutually exclusive with run().

  void start();
  /// True iff `pid` is parked at a pending operation.
  bool is_parked(int pid) const;
  /// The operation `pid` is parked on (valid iff is_parked).
  const OpDesc& pending_of(int pid) const;
  bool is_finished(int pid) const;
  ProcOutcome outcome_of(int pid) const;
  const std::string& error_of(int pid) const;
  /// Supplies the result the next step of `pid` will observe through
  /// Ctx::take_injection().
  void inject(int pid, std::int64_t value);
  /// Grants `pid` exactly one operation; returns the completed trace event.
  TraceEvent step_process(int pid);
  void kill_process(int pid);
  /// Crash-restarts a parked process: its pending operation is ABANDONED
  /// (never performed), its stack unwinds, and it re-enters via its restart
  /// hook, parking at the hook's first shared operation (or finishing).
  /// Requires restart_supported(pid).
  void restart_process(int pid);
  /// Marks the pending store-conditional of a parked process so that its
  /// next step fails spuriously.  Requires pending_of(pid).op == "sc".
  void inject_sc_failure(int pid);
  /// Lifetime shared-operation count of `pid` (the fault-point coordinate).
  std::uint64_t steps_of(int pid) const;
  /// The ascending pids currently parked at a pending operation — the
  /// explorer's runnable set (and the frame-replay validation set when a
  /// checkpointed frontier is re-materialized on a fresh SimEnv).
  std::vector<int> parked_processes() const;
  void finish();

  /// Builds a RunReport from the current process states.  Meaningful once
  /// every process is parked or finished (e.g. after finish()); the caller
  /// sets step_limit_hit, which incremental mode does not track.
  RunReport snapshot_report() const;

  const Trace& trace() const { return trace_; }
  /// Scheduler decisions made during run(), for ReplayScheduler.
  const std::vector<int>& decisions() const { return decisions_; }
  /// The virtual clock: logical ticks advanced only by granted timer
  /// operations (Ctx::sleep_until).  Deterministic per schedule; harness
  /// checkers read it to timestamp reconstructed histories.
  std::uint64_t virtual_now() const { return virtual_now_; }

 private:
  friend class Ctx;

  enum class State : std::uint8_t {
    kCreated,
    kReady,    // blocked in sync with a pending op
    kRunning,  // granted; executing its operation + local code
    kDone,     // finished, crashed or failed
  };

  struct Proc {
    std::function<void(Ctx&)> body;
    std::unique_ptr<Ctx> ctx;
    std::unique_ptr<std::binary_semaphore> go;
    std::thread thread;
    State state = State::kCreated;
    bool crash_requested = false;
    bool restart_requested = false;   // with crash_requested: unwind + re-enter
    bool sc_failure_pending = false;  // next SC step fails spuriously
    int restarts = 0;
    OpDesc pending;
    std::optional<std::int64_t> last_result;
    std::optional<std::int64_t> injection;
    ProcOutcome outcome = ProcOutcome::kUnstarted;
    std::string error;
  };

  void thread_main(int pid);
  // Ctx::sync body: park the calling process and hand control to the engine.
  void park(int pid, OpDesc desc);
  void launch();  // build procs_ and serially start the threads

  // Emits a sim.* fault-injection event through obs_sink_ (no-op when
  // detached or during finish()'s shutdown kills).
  void note_fault_event(const char* kind, int pid);

  SimOptions options_;
  audit::AccessObserver* observer_ = nullptr;
  obs::ObsSink* obs_sink_ = nullptr;
  bool finishing_ = false;  ///< suppresses events for shutdown kills
  int window_pid_ = -1;  ///< grantee of the currently open window, or -1
  std::vector<std::function<void(Ctx&)>> bodies_;
  std::vector<std::function<void(Ctx&)>> restart_hooks_;  // empty = fail-stop only
  std::vector<Proc> procs_;
  std::counting_semaphore<> arrived_{0};
  Trace trace_;
  std::vector<int> decisions_;
  std::uint64_t step_ = 0;
  std::uint64_t virtual_now_ = 0;  ///< logical clock; timer grants advance it
  bool ran_ = false;
  bool started_ = false;
  bool finished_ = false;
};

/// Convenience: build, populate and run a SimEnv in one call.
/// `make_body(pid)` must return the body for process `pid`.
///
/// This is also the cheap re-run-from-factory path used by the schedule
/// explorer (src/explore), which re-executes the same factory thousands of
/// times: pass `options.record_trace = false` to skip trace accumulation and
/// `decisions_out` to receive the decision sequence (moved, not copied) for
/// replay or shrinking.
RunReport run_system(int n, const std::function<std::function<void(Ctx&)>(int)>& make_body,
                     Scheduler& scheduler, Trace* trace_out = nullptr,
                     const FaultPlan& faults = {}, SimOptions options = {},
                     std::vector<int>* decisions_out = nullptr);

}  // namespace bss::sim
