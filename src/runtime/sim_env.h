// SimEnv — the deterministic asynchronous shared-memory machine.
//
// Model: n sequential processes, each an arbitrary C++ callable, communicate
// only through shared objects (src/registers).  Every shared-object operation
// begins with Ctx::sync(), which *blocks the process* until the scheduler
// grants it the step; while everything is blocked the engine consults the
// Scheduler (the adversary) to choose who moves.  Exactly one process runs at
// a time, so each granted operation executes atomically — which is precisely
// the atomic-register/atomic-RMW model of Afek & Stupp (and Herlihy [10]).
//
// Determinism: the execution is a pure function of (process bodies, scheduler
// decisions, crash plan).  Schedulers are replayable, so every run in this
// repository can be reproduced from a seed.
//
// Implementation: each process runs on its own std::thread but is gated by a
// binary semaphore; the engine holds a counting semaphore that each process
// releases when it reaches its next sync point (or finishes).  The threads
// are a control-flow convenience only — there is no actual data parallelism.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "runtime/crash_plan.h"
#include "runtime/scheduler.h"
#include "runtime/trace.h"

namespace bss::sim {

class SimEnv;

/// Thrown inside a process body to unwind it when the crash plan (or engine
/// shutdown) kills the process.  Process bodies must not swallow it.
struct ProcessCrashed {};

/// Per-process handle passed to process bodies and shared objects.
class Ctx {
 public:
  int pid() const { return pid_; }
  std::uint64_t steps_taken() const { return steps_taken_; }
  /// Global step counter at the moment of the call — timestamps for interval
  /// histories (runtime/linearizability.h).  Stable while this process runs.
  std::uint64_t global_step() const;

  /// Announces the pending operation and blocks until the scheduler grants
  /// this process its next step.  Called by shared objects at the start of
  /// every operation.  Throws ProcessCrashed if the process was killed.
  void sync(OpDesc desc);

  /// Records the result of the operation granted by the last sync(), for the
  /// trace.  Optional; at most once per sync.
  void note_result(std::int64_t result);

  /// Consumes the value injected by SimEnv::inject for the operation granted
  /// by the last sync().  Emulated objects (src/emulation) use this to let a
  /// driver dictate operation results; InvariantError if nothing was
  /// injected.
  std::int64_t take_injection();

 private:
  friend class SimEnv;
  Ctx(SimEnv* env, int pid) : env_(env), pid_(pid) {}

  SimEnv* env_;
  int pid_;
  std::uint64_t steps_taken_ = 0;
};

enum class ProcOutcome {
  kFinished,   ///< body returned normally
  kCrashed,    ///< killed by the crash plan or engine shutdown
  kFailed,     ///< body threw a non-crash exception (a bug; message kept)
  kUnstarted,  ///< never scheduled (only possible with step limits)
};

struct RunReport {
  std::uint64_t total_steps = 0;
  bool step_limit_hit = false;
  std::vector<ProcOutcome> outcomes;       // indexed by pid
  std::vector<std::string> errors;         // non-empty for kFailed pids
  std::vector<std::uint64_t> steps_by_pid;

  int finished_count() const;
  int crashed_count() const;
  /// True iff no process failed with an exception and the step limit held.
  bool clean() const;
  std::string summary() const;
};

struct SimOptions {
  std::uint64_t step_limit = 10'000'000;
  bool record_trace = true;
};

class SimEnv {
 public:
  explicit SimEnv(SimOptions options = {});
  ~SimEnv();

  SimEnv(const SimEnv&) = delete;
  SimEnv& operator=(const SimEnv&) = delete;

  /// Registers a process body; returns its pid (dense, starting at 0).
  /// Bodies receive their Ctx and may capture shared objects by reference.
  int add_process(std::function<void(Ctx&)> body);

  int process_count() const { return static_cast<int>(bodies_.size()); }

  /// Executes the system to quiescence (all processes finished/crashed) or
  /// to the step limit.  May be called exactly once (and not after start()).
  RunReport run(Scheduler& scheduler, const CrashPlan& crashes = {});

  // --- Incremental mode (used by the Section 3 emulation driver) ---
  // start() launches the processes up to their first sync point; the caller
  // then inspects pending operations, optionally injects results, and steps
  // chosen processes one operation at a time.  finish() kills whatever is
  // still parked.  Mutually exclusive with run().

  void start();
  /// True iff `pid` is parked at a pending operation.
  bool is_parked(int pid) const;
  /// The operation `pid` is parked on (valid iff is_parked).
  const OpDesc& pending_of(int pid) const;
  bool is_finished(int pid) const;
  ProcOutcome outcome_of(int pid) const;
  const std::string& error_of(int pid) const;
  /// Supplies the result the next step of `pid` will observe through
  /// Ctx::take_injection().
  void inject(int pid, std::int64_t value);
  /// Grants `pid` exactly one operation; returns the completed trace event.
  TraceEvent step_process(int pid);
  void kill_process(int pid);
  void finish();

  const Trace& trace() const { return trace_; }
  /// Scheduler decisions made during run(), for ReplayScheduler.
  const std::vector<int>& decisions() const { return decisions_; }

 private:
  friend class Ctx;

  enum class State : std::uint8_t {
    kCreated,
    kReady,    // blocked in sync with a pending op
    kRunning,  // granted; executing its operation + local code
    kDone,     // finished, crashed or failed
  };

  struct Proc {
    std::function<void(Ctx&)> body;
    std::unique_ptr<Ctx> ctx;
    std::unique_ptr<std::binary_semaphore> go;
    std::thread thread;
    State state = State::kCreated;
    bool crash_requested = false;
    OpDesc pending;
    std::optional<std::int64_t> last_result;
    std::optional<std::int64_t> injection;
    ProcOutcome outcome = ProcOutcome::kUnstarted;
    std::string error;
  };

  void thread_main(int pid);
  // Ctx::sync body: park the calling process and hand control to the engine.
  void park(int pid, OpDesc desc);

  SimOptions options_;
  std::vector<std::function<void(Ctx&)>> bodies_;
  std::vector<Proc> procs_;
  std::counting_semaphore<> arrived_{0};
  Trace trace_;
  std::vector<int> decisions_;
  std::uint64_t step_ = 0;
  bool ran_ = false;
  bool started_ = false;
  bool finished_ = false;
};

/// Convenience: build, populate and run a SimEnv in one call.
/// `make_body(pid)` must return the body for process `pid`.
///
/// This is also the cheap re-run-from-factory path used by the schedule
/// explorer (src/explore), which re-executes the same factory thousands of
/// times: pass `options.record_trace = false` to skip trace accumulation and
/// `decisions_out` to receive the decision sequence (moved, not copied) for
/// replay or shrinking.
RunReport run_system(int n, const std::function<std::function<void(Ctx&)>(int)>& make_body,
                     Scheduler& scheduler, Trace* trace_out = nullptr,
                     const CrashPlan& crashes = {}, SimOptions options = {},
                     std::vector<int>* decisions_out = nullptr);

}  // namespace bss::sim
