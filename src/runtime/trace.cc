#include "runtime/trace.h"

#include <sstream>

namespace bss::sim {

std::vector<TraceEvent> Trace::for_object(const std::string& object) const {
  std::vector<TraceEvent> out;
  for (const auto& event : events_) {
    if (event.desc.object == object) out.push_back(event);
  }
  return out;
}

std::vector<TraceEvent> Trace::for_pid(int pid) const {
  std::vector<TraceEvent> out;
  for (const auto& event : events_) {
    if (event.pid == pid) out.push_back(event);
  }
  return out;
}

std::size_t Trace::count(int pid, const std::string& op) const {
  std::size_t n = 0;
  for (const auto& event : events_) {
    if (event.pid == pid && (op.empty() || event.desc.op == op)) ++n;
  }
  return n;
}

std::string Trace::to_string(std::size_t max_events) const {
  std::ostringstream out;
  std::size_t shown = 0;
  for (const auto& event : events_) {
    if (shown++ >= max_events) {
      out << "... (" << events_.size() - max_events << " more)\n";
      break;
    }
    out << "#" << event.step << " p" << event.pid << " " << event.desc.object
        << "." << event.desc.op << "(" << event.desc.arg0 << ","
        << event.desc.arg1 << ")";
    if (event.has_result) out << " -> " << event.result;
    out << "\n";
  }
  return out.str();
}

}  // namespace bss::sim
