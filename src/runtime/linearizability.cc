#include "runtime/linearizability.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_set>

#include "util/checked.h"

namespace bss::sim {

namespace {

struct SearchKey {
  std::vector<bool> done;
  std::vector<std::int64_t> state;

  bool operator==(const SearchKey& other) const {
    return done == other.done && state == other.state;
  }
};

struct SearchKeyHash {
  std::size_t operator()(const SearchKey& key) const {
    std::size_t h = 1469598103934665603ULL;
    for (const bool bit : key.done) h = h * 1099511628211ULL + (bit ? 2 : 1);
    for (const std::int64_t word : key.state) {
      h ^= static_cast<std::size_t>(word) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

class Checker {
 public:
  Checker(const std::vector<IntervalOp>& history,
          const SequentialObjectSpec& spec, std::uint64_t max_states)
      : history_(history), spec_(spec), max_states_(max_states) {}

  LinearizabilityResult run() {
    LinearizabilityResult result;
    std::vector<bool> done(history_.size(), false);
    std::vector<std::int64_t> state = spec_.initial_state;
    std::vector<std::size_t> order;
    try {
      result.linearizable = search(done, state, order);
    } catch (const InvariantError&) {
      result.detail = "state budget exhausted (inconclusive)";
      result.states_explored = visited_.size();
      return result;
    }
    result.states_explored = visited_.size();
    if (result.linearizable) {
      result.witness_order = std::move(order);
    } else {
      result.detail = "no linearization replays through the specification";
    }
    return result;
  }

 private:
  // An op is schedulable next iff every op that REALLY finished before it
  // started has already been linearized.
  bool schedulable(const std::vector<bool>& done, std::size_t index) const {
    const IntervalOp& candidate = history_[index];
    for (std::size_t other = 0; other < history_.size(); ++other) {
      if (done[other] || other == index) continue;
      if (history_[other].end < candidate.start) return false;
    }
    return true;
  }

  bool search(std::vector<bool>& done, std::vector<std::int64_t>& state,
              std::vector<std::size_t>& order) {
    if (order.size() == history_.size()) return true;
    const SearchKey key{done, state};
    if (!visited_.insert(key).second) return false;
    expects(visited_.size() < max_states_,
            "linearizability search exceeded its state budget");

    for (std::size_t index = 0; index < history_.size(); ++index) {
      if (done[index] || !schedulable(done, index)) continue;
      std::vector<std::int64_t> next_state = state;
      const auto expected = spec_.apply(next_state, history_[index].payload);
      if (expected != history_[index].response) continue;
      done[index] = true;
      order.push_back(index);
      std::swap(state, next_state);
      if (search(done, state, order)) return true;
      std::swap(state, next_state);
      order.pop_back();
      done[index] = false;
    }
    return false;
  }

  const std::vector<IntervalOp>& history_;
  const SequentialObjectSpec& spec_;
  std::uint64_t max_states_;
  std::unordered_set<SearchKey, SearchKeyHash> visited_;
};

}  // namespace

LinearizabilityResult check_linearizable(const std::vector<IntervalOp>& history,
                                         const SequentialObjectSpec& spec,
                                         std::uint64_t max_states) {
  Checker checker(history, spec, max_states);
  return checker.run();
}

SequentialObjectSpec fetch_increment_spec() {
  SequentialObjectSpec spec;
  spec.initial_state = {0};
  spec.apply = [](std::vector<std::int64_t>& state,
                  const std::vector<std::int64_t>&) {
    return std::vector<std::int64_t>{state[0]++};
  };
  return spec;
}

SequentialObjectSpec snapshot_spec(int components) {
  SequentialObjectSpec spec;
  spec.initial_state.assign(static_cast<std::size_t>(components), 0);
  spec.apply = [](std::vector<std::int64_t>& state,
                  const std::vector<std::int64_t>& payload) {
    if (payload.size() == 2) {  // update(component, value)
      state[static_cast<std::size_t>(payload[0])] = payload[1];
      return std::vector<std::int64_t>{};
    }
    return state;  // scan
  };
  return spec;
}

SequentialObjectSpec fifo_queue_spec() {
  SequentialObjectSpec spec;
  spec.initial_state = {};
  spec.apply = [](std::vector<std::int64_t>& state,
                  const std::vector<std::int64_t>& payload) {
    if (payload.at(0) == 0) {  // dequeue
      if (state.empty()) return std::vector<std::int64_t>{-1};
      const std::int64_t front = state.front();
      state.erase(state.begin());
      return std::vector<std::int64_t>{front};
    }
    state.push_back(payload[0] - 1);  // enqueue
    return std::vector<std::int64_t>{0};
  };
  return spec;
}

}  // namespace bss::sim
