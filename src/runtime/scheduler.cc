#include "runtime/scheduler.h"

#include <algorithm>

#include "util/checked.h"

namespace bss::sim {

int RoundRobinScheduler::pick(const SchedView& view) {
  expects(!view.runnable.empty(), "scheduler invoked with nothing runnable");
  const int n = bss::checked_cast<int>(view.processes.size());
  for (int probe = 0; probe < n; ++probe) {
    const int pid = (cursor_ + probe) % n;
    if (std::find(view.runnable.begin(), view.runnable.end(), pid) !=
        view.runnable.end()) {
      cursor_ = (pid + 1) % n;
      return pid;
    }
  }
  return view.runnable.front();
}

int RandomScheduler::pick(const SchedView& view) {
  expects(!view.runnable.empty(), "scheduler invoked with nothing runnable");
  const auto index =
      rng_.next_below(static_cast<std::uint64_t>(view.runnable.size()));
  return view.runnable[static_cast<std::size_t>(index)];
}

int CasConvoyScheduler::pick(const SchedView& view) {
  expects(!view.runnable.empty(), "scheduler invoked with nothing runnable");
  // Prefer any process NOT poised on a cas; this drives everyone to the brink
  // of their compare&swap before any of them is allowed through.
  std::vector<int> non_cas;
  for (const int pid : view.runnable) {
    if (view.processes[static_cast<std::size_t>(pid)].pending.op != "cas") {
      non_cas.push_back(pid);
    }
  }
  if (!non_cas.empty()) {
    const auto index =
        rng_.next_below(static_cast<std::uint64_t>(non_cas.size()));
    return non_cas[static_cast<std::size_t>(index)];
  }
  const auto index =
      rng_.next_below(static_cast<std::uint64_t>(view.runnable.size()));
  return view.runnable[static_cast<std::size_t>(index)];
}

int SoloScheduler::pick(const SchedView& view) {
  expects(!view.runnable.empty(), "scheduler invoked with nothing runnable");
  return *std::min_element(view.runnable.begin(), view.runnable.end());
}

int ReplayScheduler::pick(const SchedView& view) {
  expects(!view.runnable.empty(), "scheduler invoked with nothing runnable");
  while (next_ < decisions_.size()) {
    const int pid = decisions_[next_++];
    if (std::find(view.runnable.begin(), view.runnable.end(), pid) !=
        view.runnable.end()) {
      return pid;
    }
    ++divergences_;  // recorded pid was not runnable: the tape is stale here
  }
  ++divergences_;  // tape exhausted: the fallback, not the tape, is driving
  return fallback_.pick(view);
}

}  // namespace bss::sim
