#include "runtime/fault_plan.h"

#include <algorithm>

namespace bss::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
  }
  return "?";
}

FaultPlan::FaultPlan(const CrashPlan& crashes) {
  for (const auto& [pid, op_index] : crashes.points()) {
    crash_before_op(pid, op_index);
  }
}

FaultPlan& FaultPlan::add_event(int pid, FaultKind kind,
                                std::uint64_t op_index) {
  std::vector<FaultEvent>& events = events_[pid];
  // Keep the list sorted by op_index; the FIRST registration at a given
  // index wins, so insert strictly before any later index only.
  const auto pos =
      std::find_if(events.begin(), events.end(), [op_index](const FaultEvent& e) {
        return e.op_index >= op_index;
      });
  if (pos != events.end() && pos->op_index == op_index) return *this;
  events.insert(pos, FaultEvent{kind, op_index});
  return *this;
}

FaultPlan& FaultPlan::crash_before_op(int pid, std::uint64_t op_index) {
  return add_event(pid, FaultKind::kCrash, op_index);
}

FaultPlan& FaultPlan::restart_before_op(int pid, std::uint64_t op_index) {
  return add_event(pid, FaultKind::kRestart, op_index);
}

FaultPlan& FaultPlan::fail_sc(int pid, std::uint64_t sc_ordinal) {
  sc_failures_.try_emplace(pid, sc_ordinal);
  return *this;
}

FaultPlan FaultPlan::random(int n, double crash_p, double restart_p,
                            double sc_p, std::uint64_t max_op, bss::Rng& rng) {
  FaultPlan plan;
  const auto draw_op = [&rng, max_op]() {
    return max_op == 0 ? std::uint64_t{0} : rng.next_below(max_op);
  };
  for (int pid = 0; pid < n; ++pid) {
    if (rng.next_double() < restart_p) plan.restart_before_op(pid, draw_op());
    if (rng.next_double() < crash_p) plan.crash_before_op(pid, draw_op());
    if (rng.next_double() < sc_p) plan.fail_sc(pid, draw_op());
  }
  return plan;
}

const std::vector<FaultEvent>& FaultPlan::events_for(int pid) const {
  static const std::vector<FaultEvent> kNone;
  const auto it = events_.find(pid);
  return it == events_.end() ? kNone : it->second;
}

bool FaultPlan::should_fail_sc(int pid, std::uint64_t sc_ordinal) const {
  const auto it = sc_failures_.find(pid);
  return it != sc_failures_.end() && it->second == sc_ordinal;
}

std::size_t FaultPlan::victim_count() const {
  std::size_t count = events_.size();
  for (const auto& entry : sc_failures_) {
    if (!events_.contains(entry.first)) ++count;
  }
  return count;
}

std::size_t FaultPlan::event_count() const {
  std::size_t count = sc_failures_.size();
  for (const auto& entry : events_) count += entry.second.size();
  return count;
}

bool FaultPlan::has_restarts() const {
  for (const auto& entry : events_) {
    for (const FaultEvent& event : entry.second) {
      if (event.kind == FaultKind::kRestart) return true;
    }
  }
  return false;
}

}  // namespace bss::sim
