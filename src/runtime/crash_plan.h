// Crash (fail-stop) injection.
//
// Wait-freedom is a guarantee *against* crashes: every process must finish in
// a bounded number of its own steps no matter how many others stop forever.
// A CrashPlan kills selected processes just before their t-th shared-memory
// operation; the survivors' behaviour is then validated as usual.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.h"

namespace bss::sim {

class CrashPlan {
 public:
  CrashPlan() = default;

  /// Crash `pid` immediately before it performs its `op_index`-th (0-based)
  /// shared-memory operation.  op_index 0 means the process never takes a
  /// shared step at all.  Registering the same pid twice keeps the
  /// *earliest* crash point: a fail-stop is terminal, so the first death
  /// wins and later registrations cannot resurrect or delay it.
  CrashPlan& crash_before_op(int pid, std::uint64_t op_index);

  /// Randomized plan: each pid in [0, n) crashes with probability `p`, at a
  /// uniformly random op index in [0, max_op).
  static CrashPlan random(int n, double p, std::uint64_t max_op,
                          bss::Rng& rng);

  /// True iff `pid` must crash now given it has taken `steps_taken` steps.
  bool should_crash(int pid, std::uint64_t steps_taken) const;

  bool empty() const { return points_.empty(); }
  std::size_t victim_count() const { return points_.size(); }

  /// The registered crash points, pid -> op index to die before.  Used by
  /// FaultPlan to lift a fail-stop-only plan into the general fault model.
  const std::map<int, std::uint64_t>& points() const { return points_; }

 private:
  std::map<int, std::uint64_t> points_;  // pid -> op index to die before
};

}  // namespace bss::sim
