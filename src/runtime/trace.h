// Execution traces.
//
// Every shared-memory operation performed under the simulator is recorded as
// a TraceEvent.  Traces are the ground truth for the validators: election
// consistency, label soundness, snapshot linearizability and the emulation's
// run-legality checks are all phrased as predicates over traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bss::sim {

/// Descriptor of one pending/performed shared-memory operation.
struct OpDesc {
  std::string object;  ///< object instance name, e.g. "cas", "confirm[2]"
  std::string op;      ///< operation name, e.g. "read", "write", "cas"
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
};

struct TraceEvent {
  std::uint64_t step = 0;  ///< global step index (0-based, dense)
  int pid = -1;            ///< process that performed the operation
  OpDesc desc;
  std::int64_t result = 0;  ///< op result, if the object reported one
  bool has_result = false;
};

class Trace {
 public:
  void append(TraceEvent event) { events_.push_back(std::move(event)); }
  void clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events touching the named object, in step order.
  std::vector<TraceEvent> for_object(const std::string& object) const;
  /// Events performed by `pid`, in step order.
  std::vector<TraceEvent> for_pid(int pid) const;
  /// Number of events by `pid` on operations named `op` (all ops if empty).
  std::size_t count(int pid, const std::string& op = {}) const;

  /// Human-readable dump (for examples and failing-test diagnostics).
  std::string to_string(std::size_t max_events = 200) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace bss::sim
