// The general fault model: fail-stop, crash-restart, and transient faults.
//
// CrashPlan (crash_plan.h) models the paper's adversary exactly: fail-stop,
// nothing else.  FaultPlan is its superset for the crash-*recovery* model
// (Aspnes, "Notes on Theory of Distributed Systems", ch. on recoverable
// objects): a faulted process may instead *restart* — it loses every byte of
// private state (locals, program counter, in-flight operation) while all
// shared SWMR/MWMR registers persist, and SimEnv re-enters its program
// through a per-process restart hook.  On top of process faults, a FaultPlan
// can make individual store-conditional operations on the LL/SC object fail
// *spuriously* — the hardware-faithful relaxation real LL/SC exhibits under
// cache evictions and interrupts.
//
// Semantics:
//  * Events for one pid fire in op-index order.  An event fires when the
//    process is about to take its op_index-th (0-based) lifetime shared
//    operation — restarts do NOT reset the count, so "restart before op 3,
//    crash before op 7" means the process runs 3 ops, restarts, runs 4 more
//    (of its restarted program), then dies for good.
//  * A crash is terminal: later events for that pid never fire.
//  * Registering the same (pid, op_index) twice keeps the FIRST event
//    (mirroring CrashPlan's earliest-wins rule).
//  * Restart events require the process to have a restart hook
//    (SimEnv::add_process overload); SimEnv rejects the plan otherwise.
//  * Spurious SC failures are addressed by *SC ordinal*: fail_sc(pid, j)
//    makes pid's j-th (0-based) store-conditional return failure regardless
//    of the link state.  At most one spurious failure per pid is accepted —
//    that is exactly the slack the LL/SC c&s adapter's retry bound tolerates
//    (see core/llsc_election.h).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/crash_plan.h"
#include "util/rng.h"

namespace bss::sim {

enum class FaultKind : std::uint8_t {
  kCrash,    ///< fail-stop: the process halts forever
  kRestart,  ///< crash-restart: private state lost, program re-entered
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  std::uint64_t op_index = 0;  ///< fires before the pid's op_index-th op
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Implicit lift: a CrashPlan is a FaultPlan with fail-stop events only,
  /// so every `run(scheduler, crashes)` call site keeps compiling.
  FaultPlan(const CrashPlan& crashes);  // NOLINT(google-explicit-constructor)

  /// Fail-stop `pid` before its `op_index`-th lifetime shared operation.
  FaultPlan& crash_before_op(int pid, std::uint64_t op_index);

  /// Crash-restart `pid` before its `op_index`-th lifetime shared operation.
  FaultPlan& restart_before_op(int pid, std::uint64_t op_index);

  /// Make `pid`'s `sc_ordinal`-th (0-based) store-conditional fail
  /// spuriously.  At most one per pid (re-registration is ignored).
  FaultPlan& fail_sc(int pid, std::uint64_t sc_ordinal);

  /// Randomized plan over pids [0, n): each pid independently crashes with
  /// probability `crash_p`, restarts with probability `restart_p` (both at a
  /// uniform op index in [0, max_op)), and suffers one spurious SC failure
  /// with probability `sc_p` (at a uniform SC ordinal in [0, max_op)).  A
  /// drawn crash + restart pair is ordered by op index; the crash is
  /// terminal, so a restart drawn after it simply never fires.
  static FaultPlan random(int n, double crash_p, double restart_p, double sc_p,
                          std::uint64_t max_op, bss::Rng& rng);

  /// Events registered for `pid`, sorted by op_index (firing order).
  const std::vector<FaultEvent>& events_for(int pid) const;

  /// True iff `pid`'s `sc_ordinal`-th store-conditional must fail.
  bool should_fail_sc(int pid, std::uint64_t sc_ordinal) const;

  bool empty() const { return events_.empty() && sc_failures_.empty(); }
  std::size_t victim_count() const;
  std::size_t event_count() const;
  bool has_restarts() const;

 private:
  FaultPlan& add_event(int pid, FaultKind kind, std::uint64_t op_index);

  std::map<int, std::vector<FaultEvent>> events_;
  std::map<int, std::uint64_t> sc_failures_;  // pid -> SC ordinal to fail
};

}  // namespace bss::sim
