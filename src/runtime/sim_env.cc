#include "runtime/sim_env.h"

#include <sstream>

#include "util/checked.h"

namespace bss::sim {

int RunReport::finished_count() const {
  int n = 0;
  for (const auto outcome : outcomes) {
    if (outcome == ProcOutcome::kFinished) ++n;
  }
  return n;
}

int RunReport::crashed_count() const {
  int n = 0;
  for (const auto outcome : outcomes) {
    if (outcome == ProcOutcome::kCrashed) ++n;
  }
  return n;
}

bool RunReport::clean() const {
  if (step_limit_hit) return false;
  for (const auto outcome : outcomes) {
    if (outcome == ProcOutcome::kFailed) return false;
  }
  return true;
}

std::string RunReport::summary() const {
  std::ostringstream out;
  out << "steps=" << total_steps << " finished=" << finished_count()
      << " crashed=" << crashed_count();
  if (step_limit_hit) out << " STEP-LIMIT";
  for (std::size_t pid = 0; pid < outcomes.size(); ++pid) {
    if (outcomes[pid] == ProcOutcome::kFailed) {
      out << "\n  p" << pid << " FAILED: " << errors[pid];
    }
  }
  return out.str();
}

std::uint64_t Ctx::global_step() const { return env_->step_; }

void Ctx::sync(OpDesc desc) {
  env_->park(pid_, std::move(desc));
  ++steps_taken_;
}

void Ctx::note_result(std::int64_t result) {
  env_->procs_[static_cast<std::size_t>(pid_)].last_result = result;
}

std::int64_t Ctx::take_injection() {
  auto& injection = env_->procs_[static_cast<std::size_t>(pid_)].injection;
  expects(injection.has_value(),
          "emulated operation executed without an injected result");
  const std::int64_t value = *injection;
  injection.reset();
  return value;
}

SimEnv::SimEnv(SimOptions options) : options_(options) {}

SimEnv::~SimEnv() {
  // If run() threw (e.g. a scheduler bug), threads may still be parked.
  for (auto& proc : procs_) {
    if (proc.thread.joinable()) {
      if (proc.state != State::kDone) {
        proc.crash_requested = true;
        proc.go->release();
      }
      proc.thread.join();
    }
  }
}

int SimEnv::add_process(std::function<void(Ctx&)> body) {
  expects(!ran_, "SimEnv::add_process after run()");
  bodies_.push_back(std::move(body));
  return checked_cast<int>(bodies_.size()) - 1;
}

void SimEnv::thread_main(int pid) {
  Proc& proc = procs_[static_cast<std::size_t>(pid)];
  try {
    bodies_[static_cast<std::size_t>(pid)](*proc.ctx);
    proc.outcome = ProcOutcome::kFinished;
  } catch (const ProcessCrashed&) {
    proc.outcome = ProcOutcome::kCrashed;
  } catch (const std::exception& e) {
    proc.outcome = ProcOutcome::kFailed;
    proc.error = e.what();
  } catch (...) {
    proc.outcome = ProcOutcome::kFailed;
    proc.error = "unknown exception";
  }
  proc.state = State::kDone;
  arrived_.release();
}

void SimEnv::park(int pid, OpDesc desc) {
  Proc& proc = procs_[static_cast<std::size_t>(pid)];
  proc.pending = std::move(desc);
  proc.state = State::kReady;
  arrived_.release();
  proc.go->acquire();
  if (proc.crash_requested) throw ProcessCrashed{};
}

void SimEnv::start() {
  expects(!ran_ && !started_, "SimEnv::start conflicts with a previous run");
  started_ = true;
  const int n = process_count();
  expects(n > 0, "SimEnv::start with no processes");
  procs_.resize(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    Proc& proc = procs_[static_cast<std::size_t>(pid)];
    proc.ctx = std::unique_ptr<Ctx>(new Ctx(this, pid));
    proc.go = std::make_unique<std::binary_semaphore>(0);
  }
  // Serialized launch; see the note in run().
  for (int pid = 0; pid < n; ++pid) {
    procs_[static_cast<std::size_t>(pid)].thread =
        std::thread([this, pid] { thread_main(pid); });
    arrived_.acquire();
  }
}

bool SimEnv::is_parked(int pid) const {
  return procs_[static_cast<std::size_t>(pid)].state == State::kReady;
}

const OpDesc& SimEnv::pending_of(int pid) const {
  const Proc& proc = procs_[static_cast<std::size_t>(pid)];
  expects(proc.state == State::kReady, "pending_of: process is not parked");
  return proc.pending;
}

bool SimEnv::is_finished(int pid) const {
  return procs_[static_cast<std::size_t>(pid)].state == State::kDone;
}

ProcOutcome SimEnv::outcome_of(int pid) const {
  return procs_[static_cast<std::size_t>(pid)].outcome;
}

const std::string& SimEnv::error_of(int pid) const {
  return procs_[static_cast<std::size_t>(pid)].error;
}

void SimEnv::inject(int pid, std::int64_t value) {
  expects(is_parked(pid), "inject: process is not parked");
  procs_[static_cast<std::size_t>(pid)].injection = value;
}

TraceEvent SimEnv::step_process(int pid) {
  expects(started_ && !finished_, "step_process outside start()/finish()");
  Proc& proc = procs_[static_cast<std::size_t>(pid)];
  expects(proc.state == State::kReady, "step_process: process is not parked");
  const OpDesc granted = proc.pending;
  proc.last_result.reset();
  proc.state = State::kRunning;
  proc.go->release();
  arrived_.acquire();
  TraceEvent event;
  event.step = step_++;
  event.pid = pid;
  event.desc = granted;
  if (proc.last_result.has_value()) {
    event.result = *proc.last_result;
    event.has_result = true;
  }
  if (options_.record_trace) trace_.append(event);
  return event;
}

void SimEnv::kill_process(int pid) {
  Proc& proc = procs_[static_cast<std::size_t>(pid)];
  if (proc.state != State::kReady) return;
  proc.crash_requested = true;
  proc.go->release();
  arrived_.acquire();
}

void SimEnv::finish() {
  if (!started_ || finished_) return;
  finished_ = true;
  for (int pid = 0; pid < process_count(); ++pid) kill_process(pid);
  for (auto& proc : procs_) {
    if (proc.thread.joinable()) proc.thread.join();
  }
}

RunReport SimEnv::run(Scheduler& scheduler, const CrashPlan& crashes) {
  expects(!ran_ && !started_, "SimEnv::run may be called once");
  ran_ = true;
  const int n = process_count();
  expects(n > 0, "SimEnv::run with no processes");

  procs_.resize(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    Proc& proc = procs_[static_cast<std::size_t>(pid)];
    proc.ctx = std::unique_ptr<Ctx>(new Ctx(this, pid));
    proc.go = std::make_unique<std::binary_semaphore>(0);
  }
  // Launch only after procs_ is fully built (threads index into it), and one
  // at a time: each process runs to its first sync point (or completion)
  // before the next starts, so body code ahead of the first shared operation
  // never executes concurrently — objects may touch shared state anywhere
  // inside an operation's implementation.
  for (int pid = 0; pid < n; ++pid) {
    procs_[static_cast<std::size_t>(pid)].thread =
        std::thread([this, pid] { thread_main(pid); });
    arrived_.acquire();
  }

  std::vector<ProcView> views(static_cast<std::size_t>(n));
  const auto refresh_view = [&](int pid) {
    const Proc& proc = procs_[static_cast<std::size_t>(pid)];
    ProcView& view = views[static_cast<std::size_t>(pid)];
    view.pid = pid;
    view.ready = proc.state == State::kReady;
    view.pending = proc.pending;
    view.steps_taken = proc.ctx->steps_taken();
  };
  for (int pid = 0; pid < n; ++pid) refresh_view(pid);

  const auto kill = [&](int pid) {
    Proc& proc = procs_[static_cast<std::size_t>(pid)];
    proc.crash_requested = true;
    proc.go->release();
    arrived_.acquire();  // thread unwinds, marks kDone, re-releases
    refresh_view(pid);
  };

  RunReport report;
  bool limit_hit = false;
  for (;;) {
    // Apply the crash plan to every parked process first.
    for (int pid = 0; pid < n; ++pid) {
      const Proc& proc = procs_[static_cast<std::size_t>(pid)];
      if (proc.state == State::kReady &&
          crashes.should_crash(pid, proc.ctx->steps_taken())) {
        kill(pid);
      }
    }
    std::vector<int> runnable;
    for (int pid = 0; pid < n; ++pid) {
      if (procs_[static_cast<std::size_t>(pid)].state == State::kReady) {
        runnable.push_back(pid);
      }
    }
    if (runnable.empty()) break;
    if (step_ >= options_.step_limit) {
      limit_hit = true;
      for (const int pid : runnable) kill(pid);
      break;
    }

    const SchedView view{step_, runnable, views};
    const int pid = scheduler.pick(view);
    expects(pid >= 0 && pid < n &&
                procs_[static_cast<std::size_t>(pid)].state == State::kReady,
            "scheduler picked a non-runnable process");
    decisions_.push_back(pid);

    Proc& proc = procs_[static_cast<std::size_t>(pid)];
    const OpDesc granted = proc.pending;
    proc.last_result.reset();
    proc.state = State::kRunning;
    proc.go->release();
    arrived_.acquire();  // the process parked again or finished

    if (options_.record_trace) {
      TraceEvent event;
      event.step = step_;
      event.pid = pid;
      event.desc = granted;
      if (proc.last_result.has_value()) {
        event.result = *proc.last_result;
        event.has_result = true;
      }
      trace_.append(std::move(event));
    }
    ++step_;
    refresh_view(pid);
  }

  for (auto& proc : procs_) proc.thread.join();

  report.total_steps = step_;
  report.step_limit_hit = limit_hit;
  report.outcomes.resize(static_cast<std::size_t>(n));
  report.errors.resize(static_cast<std::size_t>(n));
  report.steps_by_pid.resize(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    const Proc& proc = procs_[static_cast<std::size_t>(pid)];
    report.outcomes[static_cast<std::size_t>(pid)] = proc.outcome;
    report.errors[static_cast<std::size_t>(pid)] = proc.error;
    report.steps_by_pid[static_cast<std::size_t>(pid)] =
        proc.ctx->steps_taken();
  }
  return report;
}

RunReport run_system(
    int n, const std::function<std::function<void(Ctx&)>(int)>& make_body,
    Scheduler& scheduler, Trace* trace_out, const CrashPlan& crashes,
    SimOptions options, std::vector<int>* decisions_out) {
  SimEnv env(options);
  for (int pid = 0; pid < n; ++pid) env.add_process(make_body(pid));
  RunReport report = env.run(scheduler, crashes);
  if (trace_out != nullptr) *trace_out = env.trace();
  if (decisions_out != nullptr) *decisions_out = env.decisions();
  return report;
}

}  // namespace bss::sim
