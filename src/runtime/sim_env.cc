#include "runtime/sim_env.h"

#include <sstream>
#include <utility>

#include "obs/obs.h"
#include "util/checked.h"

namespace bss::sim {

int RunReport::finished_count() const {
  int n = 0;
  for (const auto outcome : outcomes) {
    if (outcome == ProcOutcome::kFinished) ++n;
  }
  return n;
}

int RunReport::crashed_count() const {
  int n = 0;
  for (const auto outcome : outcomes) {
    if (outcome == ProcOutcome::kCrashed) ++n;
  }
  return n;
}

int RunReport::restarted_count() const {
  int n = 0;
  for (const auto restarts : restarts_by_pid) {
    if (restarts > 0) ++n;
  }
  return n;
}

bool RunReport::clean() const {
  if (step_limit_hit) return false;
  for (const auto outcome : outcomes) {
    if (outcome == ProcOutcome::kFailed) return false;
  }
  return true;
}

std::string RunReport::summary() const {
  std::ostringstream out;
  out << "steps=" << total_steps << " finished=" << finished_count()
      << " crashed=" << crashed_count();
  if (restarted_count() > 0) out << " restarted=" << restarted_count();
  if (step_limit_hit) out << " STEP-LIMIT";
  for (std::size_t pid = 0; pid < outcomes.size(); ++pid) {
    if (outcomes[pid] == ProcOutcome::kFailed) {
      out << "\n  p" << pid << " FAILED: " << errors[pid];
    }
  }
  return out.str();
}

std::uint64_t Ctx::global_step() const { return env_->step_; }

std::uint64_t Ctx::now() {
  sync({"@clock", "read", 0, 0});
  access_token().read("@clock");
  const std::uint64_t value = env_->virtual_now_;
  note_result(static_cast<std::int64_t>(value));
  return value;
}

std::uint64_t Ctx::sleep_until(std::uint64_t deadline) {
  sync({"@clock", "timer", static_cast<std::int64_t>(deadline), 0});
  // The grant IS the timer firing: the adversary chose this moment, so the
  // clock jumps far enough for the deadline to have passed (and no further —
  // other processes' views only move when their own ops are granted).
  access_token().write("@clock");
  if (deadline > env_->virtual_now_) env_->virtual_now_ = deadline;
  const std::uint64_t value = env_->virtual_now_;
  note_result(static_cast<std::int64_t>(value));
  return value;
}

void Ctx::sync(OpDesc desc) {
  env_->park(pid_, std::move(desc));
  ++steps_taken_;
}

void Ctx::note_result(std::int64_t result) {
  env_->procs_[static_cast<std::size_t>(pid_)].last_result = result;
}

std::int64_t Ctx::take_injection() {
  auto& injection = env_->procs_[static_cast<std::size_t>(pid_)].injection;
  expects(injection.has_value(),
          "emulated operation executed without an injected result");
  const std::int64_t value = *injection;
  injection.reset();
  return value;
}

audit::AccessToken Ctx::access_token() const {
  // The window serial is the global step of the grant: step_ is stable for
  // the whole window (the engine increments it only after the op parks
  // again), and every grant bumps it, so serials are unique per window.
  const std::uint64_t window = env_->window_pid_ == pid_
                                   ? env_->step_
                                   : audit::AccessToken::kNoWindow;
  return {env_->observer_, pid_, window};
}

bool Ctx::take_sc_failure() {
  bool& pending = env_->procs_[static_cast<std::size_t>(pid_)].sc_failure_pending;
  const bool fail = pending;
  pending = false;
  return fail;
}

SimEnv::SimEnv(SimOptions options) : options_(options) {}

SimEnv::~SimEnv() {
  // If run() threw (e.g. a scheduler bug), threads may still be parked.
  for (auto& proc : procs_) {
    if (proc.thread.joinable()) {
      if (proc.state != State::kDone) {
        proc.crash_requested = true;
        proc.go->release();
      }
      proc.thread.join();
    }
  }
}

int SimEnv::add_process(std::function<void(Ctx&)> body) {
  expects(!ran_, "SimEnv::add_process after run()");
  bodies_.push_back(std::move(body));
  restart_hooks_.emplace_back();  // no hook: restarts unsupported
  return checked_cast<int>(bodies_.size()) - 1;
}

int SimEnv::add_process(std::function<void(Ctx&)> body,
                        std::function<void(Ctx&)> restart_hook) {
  expects(!ran_, "SimEnv::add_process after run()");
  expects(static_cast<bool>(restart_hook),
          "add_process: restart hook must be callable");
  bodies_.push_back(std::move(body));
  restart_hooks_.push_back(std::move(restart_hook));
  return checked_cast<int>(bodies_.size()) - 1;
}

void SimEnv::set_access_observer(audit::AccessObserver* observer) {
  expects(!ran_ && !started_, "set_access_observer after the run began");
  observer_ = observer;
}

void SimEnv::set_obs_sink(obs::ObsSink* sink) {
  expects(!ran_ && !started_, "set_obs_sink after the run began");
  obs_sink_ = sink;
}

void SimEnv::note_fault_event(const char* kind, int pid) {
  if (obs_sink_ == nullptr || finishing_ || !obs_sink_->events_enabled()) {
    return;
  }
  obs::Event event;
  event.kind = kind;
  event.step = step_;  // global step counter: deterministic for replays
  event.fields.emplace_back("pid", std::to_string(pid));
  event.fields.emplace_back(
      "victim_steps",
      std::to_string(procs_[static_cast<std::size_t>(pid)].ctx->steps_taken()));
  obs_sink_->emit(std::move(event));
}

bool SimEnv::restart_supported(int pid) const {
  return static_cast<bool>(restart_hooks_[static_cast<std::size_t>(pid)]);
}

void SimEnv::thread_main(int pid) {
  Proc& proc = procs_[static_cast<std::size_t>(pid)];
  for (;;) {
    try {
      if (proc.ctx->incarnation_ == 0) {
        bodies_[static_cast<std::size_t>(pid)](*proc.ctx);
      } else {
        restart_hooks_[static_cast<std::size_t>(pid)](*proc.ctx);
      }
      proc.outcome = ProcOutcome::kFinished;
    } catch (const ProcessCrashed&) {
      if (proc.restart_requested) {
        // Crash-restart: the unwound stack took every private local with
        // it; shared registers persist untouched.  Re-enter through the
        // restart hook — the engine is blocked on arrived_ until the new
        // incarnation parks at its first shared operation (or finishes),
        // so the re-entry stays serialized like the initial launch.
        proc.restart_requested = false;
        proc.crash_requested = false;
        proc.injection.reset();
        proc.sc_failure_pending = false;
        ++proc.ctx->incarnation_;
        ++proc.restarts;
        continue;
      }
      proc.outcome = ProcOutcome::kCrashed;
    } catch (const std::exception& e) {
      proc.outcome = ProcOutcome::kFailed;
      proc.error = e.what();
    } catch (...) {
      proc.outcome = ProcOutcome::kFailed;
      proc.error = "unknown exception";
    }
    break;
  }
  proc.state = State::kDone;
  arrived_.release();
}

void SimEnv::park(int pid, OpDesc desc) {
  Proc& proc = procs_[static_cast<std::size_t>(pid)];
  proc.pending = std::move(desc);
  proc.state = State::kReady;
  arrived_.release();
  proc.go->acquire();
  if (proc.crash_requested) throw ProcessCrashed{};
}

void SimEnv::launch() {
  const int n = process_count();
  expects(n > 0, "SimEnv started with no processes");
  procs_.resize(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    Proc& proc = procs_[static_cast<std::size_t>(pid)];
    proc.ctx = std::unique_ptr<Ctx>(new Ctx(this, pid));
    proc.go = std::make_unique<std::binary_semaphore>(0);
  }
  // Launch only after procs_ is fully built (threads index into it), and one
  // at a time: each process runs to its first sync point (or completion)
  // before the next starts, so body code ahead of the first shared operation
  // never executes concurrently — objects may touch shared state anywhere
  // inside an operation's implementation.
  for (int pid = 0; pid < n; ++pid) {
    procs_[static_cast<std::size_t>(pid)].thread =
        std::thread([this, pid] { thread_main(pid); });
    arrived_.acquire();
  }
}

void SimEnv::start() {
  expects(!ran_ && !started_, "SimEnv::start conflicts with a previous run");
  started_ = true;
  launch();
}

bool SimEnv::is_parked(int pid) const {
  return procs_[static_cast<std::size_t>(pid)].state == State::kReady;
}

const OpDesc& SimEnv::pending_of(int pid) const {
  const Proc& proc = procs_[static_cast<std::size_t>(pid)];
  expects(proc.state == State::kReady, "pending_of: process is not parked");
  return proc.pending;
}

bool SimEnv::is_finished(int pid) const {
  return procs_[static_cast<std::size_t>(pid)].state == State::kDone;
}

ProcOutcome SimEnv::outcome_of(int pid) const {
  return procs_[static_cast<std::size_t>(pid)].outcome;
}

const std::string& SimEnv::error_of(int pid) const {
  return procs_[static_cast<std::size_t>(pid)].error;
}

void SimEnv::inject(int pid, std::int64_t value) {
  expects(is_parked(pid), "inject: process is not parked");
  procs_[static_cast<std::size_t>(pid)].injection = value;
}

TraceEvent SimEnv::step_process(int pid) {
  expects(started_ && !finished_, "step_process outside start()/finish()");
  Proc& proc = procs_[static_cast<std::size_t>(pid)];
  expects(proc.state == State::kReady, "step_process: process is not parked");
  const OpDesc granted = proc.pending;
  proc.last_result.reset();
  proc.state = State::kRunning;
  window_pid_ = pid;
  if (observer_ != nullptr) observer_->on_window_begin(pid, granted, step_);
  proc.go->release();
  arrived_.acquire();
  window_pid_ = -1;
  if (observer_ != nullptr) {
    observer_->on_window_end(
        pid, proc.state == State::kDone && proc.outcome != ProcOutcome::kFinished);
  }
  TraceEvent event;
  event.step = step_++;
  event.pid = pid;
  event.desc = granted;
  if (proc.last_result.has_value()) {
    event.result = *proc.last_result;
    event.has_result = true;
  }
  if (options_.record_trace) trace_.append(event);
  return event;
}

void SimEnv::kill_process(int pid) {
  Proc& proc = procs_[static_cast<std::size_t>(pid)];
  if (proc.state != State::kReady) return;
  note_fault_event("sim.crash", pid);
  proc.crash_requested = true;
  proc.go->release();
  arrived_.acquire();
}

void SimEnv::restart_process(int pid) {
  Proc& proc = procs_[static_cast<std::size_t>(pid)];
  expects(proc.state == State::kReady, "restart_process: process is not parked");
  expects(restart_supported(pid), "restart_process: process has no restart hook");
  note_fault_event("sim.restart", pid);
  proc.restart_requested = true;
  proc.crash_requested = true;
  proc.go->release();
  arrived_.acquire();  // the restarted incarnation parked (or finished)
}

void SimEnv::inject_sc_failure(int pid) {
  Proc& proc = procs_[static_cast<std::size_t>(pid)];
  expects(proc.state == State::kReady,
          "inject_sc_failure: process is not parked");
  expects(proc.pending.op == "sc",
          "inject_sc_failure: pending operation is not a store-conditional");
  note_fault_event("sim.sc_failure", pid);
  proc.sc_failure_pending = true;
}

std::uint64_t SimEnv::steps_of(int pid) const {
  return procs_[static_cast<std::size_t>(pid)].ctx->steps_taken();
}

std::vector<int> SimEnv::parked_processes() const {
  std::vector<int> parked;
  for (int pid = 0; pid < process_count(); ++pid) {
    if (is_parked(pid)) parked.push_back(pid);
  }
  return parked;
}

RunReport SimEnv::snapshot_report() const {
  const int n = process_count();
  RunReport report;
  report.total_steps = step_;
  report.outcomes.resize(static_cast<std::size_t>(n));
  report.errors.resize(static_cast<std::size_t>(n));
  report.steps_by_pid.resize(static_cast<std::size_t>(n));
  report.restarts_by_pid.resize(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    const Proc& proc = procs_[static_cast<std::size_t>(pid)];
    report.outcomes[static_cast<std::size_t>(pid)] = proc.outcome;
    report.errors[static_cast<std::size_t>(pid)] = proc.error;
    report.steps_by_pid[static_cast<std::size_t>(pid)] =
        proc.ctx ? proc.ctx->steps_taken() : 0;
    report.restarts_by_pid[static_cast<std::size_t>(pid)] = proc.restarts;
  }
  return report;
}

void SimEnv::finish() {
  if (!started_ || finished_) return;
  finished_ = true;
  finishing_ = true;  // shutdown kills are not fault injections
  for (int pid = 0; pid < process_count(); ++pid) kill_process(pid);
  for (auto& proc : procs_) {
    if (proc.thread.joinable()) proc.thread.join();
  }
}

RunReport SimEnv::run(Scheduler& scheduler, const FaultPlan& faults) {
  expects(!ran_ && !started_, "SimEnv::run may be called once");
  ran_ = true;
  const int n = process_count();
  expects(n > 0, "SimEnv::run with no processes");
  launch();

  std::vector<ProcView> views(static_cast<std::size_t>(n));
  const auto refresh_view = [&](int pid) {
    const Proc& proc = procs_[static_cast<std::size_t>(pid)];
    ProcView& view = views[static_cast<std::size_t>(pid)];
    view.pid = pid;
    view.ready = proc.state == State::kReady;
    view.pending = proc.pending;
    view.steps_taken = proc.ctx->steps_taken();
  };
  for (int pid = 0; pid < n; ++pid) refresh_view(pid);

  const auto kill = [&](int pid) {
    Proc& proc = procs_[static_cast<std::size_t>(pid)];
    proc.crash_requested = true;
    proc.go->release();
    arrived_.acquire();  // thread unwinds, marks kDone, re-releases
    refresh_view(pid);
  };
  const auto restart = [&](int pid) {
    Proc& proc = procs_[static_cast<std::size_t>(pid)];
    expects(restart_supported(pid),
            "fault plan restarts a process without a restart hook");
    proc.restart_requested = true;
    proc.crash_requested = true;
    proc.go->release();
    arrived_.acquire();  // the restarted incarnation parked (or finished)
    refresh_view(pid);
  };

  // Per-pid cursor into the (sorted) fault event list, and count of granted
  // store-conditionals (the coordinate fail_sc addresses).
  std::vector<std::size_t> fault_cursor(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> sc_granted(static_cast<std::size_t>(n), 0);

  RunReport report;
  bool limit_hit = false;
  for (;;) {
    // Apply due fault events to every parked process first.  A restart
    // leaves the process parked again (at its new first operation) with its
    // lifetime step count intact, so several due events fire back-to-back.
    for (int pid = 0; pid < n; ++pid) {
      for (;;) {
        const Proc& proc = procs_[static_cast<std::size_t>(pid)];
        if (proc.state != State::kReady) break;
        const auto& events = faults.events_for(pid);
        if (fault_cursor[static_cast<std::size_t>(pid)] >= events.size()) break;
        const FaultEvent& event =
            events[fault_cursor[static_cast<std::size_t>(pid)]];
        if (proc.ctx->steps_taken() < event.op_index) break;
        ++fault_cursor[static_cast<std::size_t>(pid)];
        if (event.kind == FaultKind::kCrash) {
          kill(pid);
        } else {
          restart(pid);
        }
      }
    }
    std::vector<int> runnable;
    for (int pid = 0; pid < n; ++pid) {
      if (procs_[static_cast<std::size_t>(pid)].state == State::kReady) {
        runnable.push_back(pid);
      }
    }
    if (runnable.empty()) break;
    if (step_ >= options_.step_limit) {
      limit_hit = true;
      for (const int pid : runnable) kill(pid);
      break;
    }

    const SchedView view{step_, runnable, views};
    const int pid = scheduler.pick(view);
    expects(pid >= 0 && pid < n &&
                procs_[static_cast<std::size_t>(pid)].state == State::kReady,
            "scheduler picked a non-runnable process");
    decisions_.push_back(pid);

    Proc& proc = procs_[static_cast<std::size_t>(pid)];
    const OpDesc granted = proc.pending;
    if (granted.op == "sc" &&
        faults.should_fail_sc(pid, sc_granted[static_cast<std::size_t>(pid)]++)) {
      proc.sc_failure_pending = true;
    }
    proc.last_result.reset();
    proc.state = State::kRunning;
    window_pid_ = pid;
    if (observer_ != nullptr) observer_->on_window_begin(pid, granted, step_);
    proc.go->release();
    arrived_.acquire();  // the process parked again or finished
    window_pid_ = -1;
    if (observer_ != nullptr) {
      observer_->on_window_end(pid, proc.state == State::kDone &&
                                        proc.outcome != ProcOutcome::kFinished);
    }
    proc.sc_failure_pending = false;  // a fault the op did not consume lapses

    if (options_.record_trace) {
      TraceEvent event;
      event.step = step_;
      event.pid = pid;
      event.desc = granted;
      if (proc.last_result.has_value()) {
        event.result = *proc.last_result;
        event.has_result = true;
      }
      trace_.append(std::move(event));
    }
    ++step_;
    refresh_view(pid);
  }

  for (auto& proc : procs_) proc.thread.join();

  report = snapshot_report();
  report.step_limit_hit = limit_hit;
  return report;
}

RunReport run_system(
    int n, const std::function<std::function<void(Ctx&)>(int)>& make_body,
    Scheduler& scheduler, Trace* trace_out, const FaultPlan& faults,
    SimOptions options, std::vector<int>* decisions_out) {
  SimEnv env(options);
  for (int pid = 0; pid < n; ++pid) env.add_process(make_body(pid));
  RunReport report = env.run(scheduler, faults);
  if (trace_out != nullptr) *trace_out = env.trace();
  if (decisions_out != nullptr) *decisions_out = env.decisions();
  return report;
}

}  // namespace bss::sim
