// Schedulers: the adversary.
//
// In the asynchronous shared-memory model a computation's interleaving is
// chosen by an adversary.  Here the adversary is a Scheduler object: at every
// global step it sees which processes are ready (blocked at the start of
// their next shared-memory operation, with the pending operation visible) and
// picks the one that moves.  Wait-freedom claims are tested by running the
// same algorithm under every scheduler in this file, including crash plans.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runtime/trace.h"
#include "util/rng.h"

namespace bss::sim {

/// Per-process information exposed to schedulers.
struct ProcView {
  int pid = -1;
  bool ready = false;          ///< blocked at a pending shared op
  OpDesc pending;              ///< valid iff ready
  std::uint64_t steps_taken = 0;
};

struct SchedView {
  std::uint64_t step = 0;
  std::span<const int> runnable;        ///< pids that may be granted now
  std::span<const ProcView> processes;  ///< indexed by pid
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Returns the pid (member of view.runnable) to grant the next step.
  virtual int pick(const SchedView& view) = 0;
  /// Name for reports.
  virtual std::string name() const = 0;
};

/// Cycles through processes in pid order; the "fair" baseline.
class RoundRobinScheduler final : public Scheduler {
 public:
  int pick(const SchedView& view) override;
  std::string name() const override { return "round-robin"; }

 private:
  int cursor_ = 0;
};

/// Uniformly random among runnable processes; replayable from the seed.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  int pick(const SchedView& view) override;
  std::string name() const override { return "random"; }

 private:
  bss::Rng rng_;
};

/// Adversarial heuristic for compare&swap algorithms: holds back every
/// process that is about to perform a `cas` until *all* runnable processes
/// are poised on a cas, then releases exactly one — maximizing contention and
/// the number of failed compare&swaps (the worst case for first-value
/// algorithms, where every failure forces a retry round).
class CasConvoyScheduler final : public Scheduler {
 public:
  explicit CasConvoyScheduler(std::uint64_t seed) : rng_(seed) {}
  int pick(const SchedView& view) override;
  std::string name() const override { return "cas-convoy"; }

 private:
  bss::Rng rng_;
};

/// Runs one process as long as possible, switching only when it finishes —
/// the "solo run" adversary; with crash plans this yields the classic
/// "leader crashes mid-protocol" executions.
class SoloScheduler final : public Scheduler {
 public:
  int pick(const SchedView& view) override;
  std::string name() const override { return "solo"; }
};

/// Replays a recorded decision sequence (falling back to round-robin when
/// the recorded pid is not runnable, which keeps replay usable under
/// slightly different crash plans).  Every departure from the tape — a
/// recorded pid that had to be skipped, or a pick served after the tape ran
/// out — is counted as a *divergence*; exact replay of a counterexample
/// artifact must finish with divergences() == 0, so stale traces can no
/// longer masquerade as reproductions behind the silent fallback.
class ReplayScheduler final : public Scheduler {
 public:
  explicit ReplayScheduler(std::vector<int> decisions)
      : decisions_(std::move(decisions)) {}
  int pick(const SchedView& view) override;
  std::string name() const override { return "replay"; }

  /// Recorded decisions skipped because the pid was not runnable, plus picks
  /// served by the round-robin fallback after the tape was exhausted.
  std::uint64_t divergences() const { return divergences_; }
  /// True iff every pick so far came verbatim from the tape.
  bool exact_so_far() const { return divergences_ == 0; }
  /// Tape entries consumed so far (skipped ones included).
  std::size_t consumed() const { return next_; }

 private:
  std::vector<int> decisions_;
  std::size_t next_ = 0;
  std::uint64_t divergences_ = 0;
  RoundRobinScheduler fallback_;
};

}  // namespace bss::sim
