// bss_top — live viewer for `bss-status v1` heartbeat files.
//
// Reads a status artifact (written atomically via tmp+rename by explore(),
// the bench campaign drivers, or the leader_worker_pool soak) and renders
// a progress / worker / profile view; with `--follow` it re-reads on an
// interval and redraws until the producer reports state "complete".
// `--json` prints the raw document instead (after checking that it parses
// and carries the bss-status schema line), for scripting.
//
//   bss_top [--follow] [--interval-ms N] [--json] STATUS.json
//
// Exit status: 0 on a rendered (or, with --follow, completed) status file,
// 1 when the file is unreadable or not a bss-status v1 document, 2 on
// usage errors.
//
// Deliberately std-only (same policy as bss_lint): the monitor must build
// and run against nothing but the artifact format, so it keeps its own
// ~100-line JSON reader for the subset status files use instead of
// linking the project's canonical-JSON library.
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

// ------------------------------------------------------- minimal JSON
// Just enough parser for bss-status documents: objects, arrays, strings
// (with the escapes the canonical writer emits), integers, doubles, bools
// and null.  Any syntax error yields nullopt — the caller treats that as
// "not a status file", never as partial data (tmp+rename means a reader
// can't observe a half-written snapshot anyway).

struct Node {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  long long integer = 0;
  double number = 0;
  std::string string;
  std::vector<Node> array;
  std::map<std::string, Node> object;

  const Node* find(const std::string& key) const {
    const auto it = object.find(key);
    return it != object.end() ? &it->second : nullptr;
  }
  /// Integer view of a numeric node (doubles truncate; non-numbers -> 0).
  unsigned long long as_uint() const {
    if (kind == Kind::kInt && integer >= 0) {
      return static_cast<unsigned long long>(integer);
    }
    if (kind == Kind::kDouble && number >= 0) {
      return static_cast<unsigned long long>(number);
    }
    return 0;
  }
  double as_double() const {
    if (kind == Kind::kInt) return static_cast<double>(integer);
    return kind == Kind::kDouble ? number : 0;
  }
};

struct Parser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool literal(const char* text) {
    const std::size_t n = std::strlen(text);
    if (static_cast<std::size_t>(end - p) < n || std::strncmp(p, text, n)) {
      return false;
    }
    p += n;
    return true;
  }
  bool parse_string(std::string* out) {
    if (p == end || *p != '"') return false;
    ++p;
    out->clear();
    while (p != end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p == end) return false;
        const char escape = *p++;
        switch (escape) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {  // status strings are ASCII; non-ASCII renders as '?'
            if (end - p < 4) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            c = code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: return false;
        }
      }
      out->push_back(c);
    }
    if (p == end) return false;
    ++p;  // closing quote
    return true;
  }
  bool parse_value(Node* out) {
    skip_ws();
    if (p == end) return false;
    if (*p == '{') {
      ++p;
      out->kind = Node::Kind::kObject;
      skip_ws();
      if (p != end && *p == '}') { ++p; return true; }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (p == end || *p != ':') return false;
        ++p;
        Node child;
        if (!parse_value(&child)) return false;
        out->object.emplace(std::move(key), std::move(child));
        skip_ws();
        if (p == end) return false;
        if (*p == ',') { ++p; continue; }
        if (*p == '}') { ++p; return true; }
        return false;
      }
    }
    if (*p == '[') {
      ++p;
      out->kind = Node::Kind::kArray;
      skip_ws();
      if (p != end && *p == ']') { ++p; return true; }
      for (;;) {
        Node child;
        if (!parse_value(&child)) return false;
        out->array.push_back(std::move(child));
        skip_ws();
        if (p == end) return false;
        if (*p == ',') { ++p; continue; }
        if (*p == ']') { ++p; return true; }
        return false;
      }
    }
    if (*p == '"') {
      out->kind = Node::Kind::kString;
      return parse_string(&out->string);
    }
    if (literal("true")) { out->kind = Node::Kind::kBool; out->boolean = true; return true; }
    if (literal("false")) { out->kind = Node::Kind::kBool; out->boolean = false; return true; }
    if (literal("null")) { out->kind = Node::Kind::kNull; return true; }
    // number
    const char* start = p;
    if (p != end && *p == '-') ++p;
    while (p != end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    bool floating = false;
    if (p != end && (*p == '.' || *p == 'e' || *p == 'E')) {
      floating = true;
      while (p != end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                          *p == '.' || *p == 'e' || *p == 'E' || *p == '+' ||
                          *p == '-')) {
        ++p;
      }
    }
    if (p == start) return false;
    const std::string token(start, p);
    char* parse_end = nullptr;
    if (floating) {
      out->kind = Node::Kind::kDouble;
      out->number = std::strtod(token.c_str(), &parse_end);
    } else {
      out->kind = Node::Kind::kInt;
      out->integer = std::strtoll(token.c_str(), &parse_end, 10);
    }
    return parse_end != nullptr && *parse_end == '\0';
  }
};

std::optional<Node> parse_document(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  Node root;
  if (!parser.parse_value(&root)) return std::nullopt;
  parser.skip_ws();
  if (parser.p != parser.end) return std::nullopt;
  return root;
}

// ------------------------------------------------------------ rendering

std::string progress_bar(unsigned long long done, unsigned long long total) {
  constexpr int kWidth = 24;
  std::string bar;
  const int filled =
      total > 0 ? static_cast<int>(done * kWidth / total) : 0;
  for (int i = 0; i < kWidth; ++i) bar += i < filled ? '#' : '.';
  return bar;
}

std::string human_count(unsigned long long n) {
  char out[32];
  if (n >= 10'000'000ULL) {
    std::snprintf(out, sizeof(out), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10'000ULL) {
    std::snprintf(out, sizeof(out), "%.1fk", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(out, sizeof(out), "%llu", n);
  }
  return out;
}

void render(const Node& root) {
  const Node* producer = root.find("producer");
  const Node* system = root.find("system");
  const Node* state = root.find("state");
  const Node* seq = root.find("seq");
  const Node* progress = root.find("progress");
  std::printf("%s", producer != nullptr ? producer->string.c_str() : "?");
  if (system != nullptr && !system->string.empty()) {
    std::printf("  %s", system->string.c_str());
  }
  std::printf("  [%s]  seq %llu\n",
              state != nullptr ? state->string.c_str() : "?",
              seq != nullptr ? seq->as_uint() : 0);
  if (progress != nullptr) {
    const auto count = [&](const char* key) {
      const Node* node = progress->find(key);
      return node != nullptr ? node->as_uint() : 0ULL;
    };
    const unsigned long long schedules = count("schedules");
    const unsigned long long max_schedules = count("max_schedules");
    if (max_schedules > 0) {
      std::printf("  schedules  %s / %s  [%s] %3.0f%%\n",
                  human_count(schedules).c_str(),
                  human_count(max_schedules).c_str(),
                  progress_bar(schedules, max_schedules).c_str(),
                  100.0 * static_cast<double>(schedules) /
                      static_cast<double>(max_schedules));
    } else {
      std::printf("  schedules  %s (unbounded)\n",
                  human_count(schedules).c_str());
    }
    std::printf("  violations %llu   frontier %llu   checkpoints %llu   "
                "passes %llu   jobs %llu\n",
                count("violations"), count("frontier"), count("checkpoints"),
                count("passes"), count("jobs"));
    const unsigned long long ppm = count("fingerprint_hit_rate_ppm");
    if (count("fingerprint_prunes") > 0 || ppm > 0) {
      std::printf("  fp-prunes  %s (hit rate %.1f%%)\n",
                  human_count(count("fingerprint_prunes")).c_str(),
                  static_cast<double>(ppm) / 10'000.0);
    }
  }
  if (const Node* timing = root.find("timing")) {
    const Node* rate = timing->find("schedules_per_second");
    const Node* window = timing->find("window_schedules_per_second");
    const Node* eta = timing->find("eta_seconds");
    const Node* elapsed = timing->find("elapsed_ms");
    const Node* ckpt_age = timing->find("checkpoint_age_ms");
    std::printf("  rate      ");
    if (rate != nullptr) std::printf(" %.0f/s cumulative", rate->as_double());
    if (window != nullptr) std::printf("  %.0f/s window", window->as_double());
    if (rate == nullptr && window == nullptr) std::printf(" n/a");
    std::printf("\n");
    if (elapsed != nullptr || eta != nullptr || ckpt_age != nullptr) {
      std::printf("  clock     ");
      if (elapsed != nullptr) {
        std::printf(" elapsed %.1fs",
                    static_cast<double>(elapsed->as_uint()) / 1e3);
      }
      if (eta != nullptr) std::printf("  eta %.0fs", eta->as_double());
      if (ckpt_age != nullptr) {
        std::printf("  last checkpoint %.1fs ago",
                    static_cast<double>(ckpt_age->as_uint()) / 1e3);
      }
      std::printf("\n");
    }
  }
  if (const Node* workers = root.find("workers");
      workers != nullptr && !workers->array.empty()) {
    std::printf("  %-8s %-9s %9s %11s\n", "worker", "state", "steals",
                "schedules");
    for (const Node& row : workers->array) {
      const Node* state_node = row.find("state");
      const Node* worker_node = row.find("worker");
      const Node* steals = row.find("steals");
      const Node* schedules = row.find("schedules");
      std::printf("  %-8llu %-9s %9llu %11llu\n",
                  worker_node != nullptr ? worker_node->as_uint() : 0,
                  state_node != nullptr ? state_node->string.c_str() : "?",
                  steals != nullptr ? steals->as_uint() : 0,
                  schedules != nullptr ? schedules->as_uint() : 0);
    }
  }
  if (const Node* profile = root.find("profile");
      profile != nullptr && !profile->object.empty()) {
    std::printf("  %-18s %9s %11s\n", "phase", "calls", "ms");
    for (const auto& [phase, cell] : profile->object) {
      const Node* calls = cell.find("calls");
      const Node* ns = cell.find("ns");
      std::printf("  %-18s %9llu %11.1f\n", phase.c_str(),
                  calls != nullptr ? calls->as_uint() : 0,
                  ns != nullptr
                      ? static_cast<double>(ns->as_uint()) / 1e6
                      : 0.0);
    }
  }
}

// --------------------------------------------------------------- driver

int usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s [--follow] [--interval-ms N] [--json] STATUS.json\n"
               "  --follow         re-read and redraw until state is "
               "\"complete\"\n"
               "  --interval-ms N  follow poll interval (default 500)\n"
               "  --json           print the raw document (schema-checked) "
               "instead of the tables\n",
               program);
  return 2;
}

struct Snapshot {
  std::string text;
  Node root;
};

/// Reads and schema-checks one snapshot; diagnostics only when `verbose`
/// (the follow loop stays quiet between good reads — a campaign may create
/// the file a beat after the monitor starts).
std::optional<Snapshot> read_snapshot(const std::string& path, bool verbose) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (verbose) std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Snapshot snapshot;
  snapshot.text = buffer.str();
  auto parsed = parse_document(snapshot.text);
  if (!parsed.has_value() || parsed->kind != Node::Kind::kObject) {
    if (verbose) {
      std::fprintf(stderr, "%s: not a JSON object\n", path.c_str());
    }
    return std::nullopt;
  }
  const Node* schema = parsed->find("schema");
  if (schema == nullptr || schema->kind != Node::Kind::kString ||
      schema->string != "bss-status v1") {
    if (verbose) {
      std::fprintf(stderr, "%s: missing or unknown schema (want "
                   "\"bss-status v1\")\n", path.c_str());
    }
    return std::nullopt;
  }
  snapshot.root = std::move(*parsed);
  return snapshot;
}

bool is_complete(const Node& root) {
  const Node* state = root.find("state");
  return state != nullptr && state->string == "complete";
}

}  // namespace

int main(int argc, char** argv) {
  bool follow = false;
  bool json = false;
  long interval_ms = 500;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--follow") {
      follow = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      char* end = nullptr;
      interval_ms = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || interval_ms < 1) {
        return usage(argv[0]);
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  if (!follow) {
    const auto snapshot = read_snapshot(path, /*verbose=*/true);
    if (!snapshot.has_value()) return 1;
    if (json) {
      std::fputs(snapshot->text.c_str(), stdout);
    } else {
      render(snapshot->root);
    }
    return 0;
  }

  // Follow mode: poll until the producer says "complete".  A file that
  // does not exist yet is normal — the natural workflow launches bss_top
  // right after the campaign, a beat before its seq-0 write — so we wait
  // for it (with one notice).  A file that exists but is not a bss-status
  // document is a typo'd path or a foreign artifact: diagnose and exit 1
  // rather than spin forever looking healthy.
  bool first = true;
  bool announced_wait = false;
  unsigned long long last_seq = ~0ULL;
  for (;;) {
    if (first && !std::ifstream(path).good()) {
      if (!announced_wait) {
        std::fprintf(stderr, "bss_top: waiting for %s ...\n", path.c_str());
        announced_wait = true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    const auto snapshot = read_snapshot(path, first);
    if (first && !snapshot.has_value()) return 1;
    first = false;
    if (snapshot.has_value()) {
      const Node* seq = snapshot->root.find("seq");
      const unsigned long long this_seq =
          seq != nullptr ? seq->as_uint() : 0;
      if (this_seq != last_seq) {
        last_seq = this_seq;
        if (json) {
          std::fputs(snapshot->text.c_str(), stdout);
          std::fflush(stdout);
        } else {
          std::printf("\033[2J\033[H");  // clear + home, top(1)-style
          render(snapshot->root);
          std::fflush(stdout);
        }
      }
      if (is_complete(snapshot->root)) return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
