// bss_lint — the determinism & footprint-conformance checker.
//
// Every guarantee this repo makes (byte-identical serial/parallel
// exploration, canonical-JSON artifacts, POR soundness over declared OpDesc
// footprints) is a *determinism* invariant; the test suite proves each one
// pointwise at runtime, and this tool enforces the hazard classes that
// produce violations statically, before a 10-million-schedule campaign can
// depend on them.  It is a deliberate token/line-level scanner — no libclang,
// no compile commands, std-only — so it builds anywhere the tree builds and
// runs over the whole repo in milliseconds.
//
// Rules (each named, each suppressible at the site):
//
//   no-wallclock            system_clock / steady_clock /
//                           high_resolution_clock / gettimeofday /
//                           clock_gettime outside the timing quarantine
//                           (bench/ — the bench timing layer — and the obs
//                           timing channel: src/obs/events.cc,
//                           src/obs/timeline.cc).
//   no-ambient-randomness   std::random_device, rand()/srand(), and argless
//                           construction of std:: engines (mt19937 & co);
//                           randomness must be plumbed from a printed seed
//                           (util/rng.h).
//   ordered-emission        iteration over std::unordered_{map,set,...} in a
//                           function that emits canonical output (JSON,
//                           fingerprints, artifacts, merges) — allowed only
//                           when the function also sorts downstream of the
//                           loop, or with an explicit suppression.
//   no-pointer-order        raw pointer values used as ordering keys:
//                           std::less over pointers, ordered map/set with a
//                           pointer key, reinterpret_cast to (u)intptr_t.
//                           Pointer order is allocation order — i.e. hidden
//                           nondeterminism.
//   env-registry            every getenv("BSS_*") must name a variable
//                           declared in src/util/env_registry.h, so the knob
//                           surface stays enumerable and documented.
//   footprint-declared      every token-stamping register file under a
//                           registers/ directory must carry a
//                           BSS_FOOTPRINT(Class, op...) annotation whose
//                           op-name set matches the file's ctx.sync({...})
//                           op literals exactly (registers/footprint.h).
//
// Suppression syntax — on the offending line or the line above:
//
//   // bss-lint: wallclock-ok(reason)         no-wallclock
//   // bss-lint: randomness-ok(reason)        no-ambient-randomness
//   // bss-lint: ordered-ok(reason)           ordered-emission
//   // bss-lint: pointer-order-ok(reason)     no-pointer-order
//   // bss-lint: env-ok(reason)               env-registry
//   // bss-lint: footprint-ok(reason)         footprint-declared
//
// The reason is mandatory by convention (the parenthesis is matched) and is
// the reviewer-facing justification, exactly like the repo's NOLINT policy.
//
// Usage:
//   bss_lint [--root DIR] [PATH...]     scan (default: src bench tools
//                                       examples under --root, which
//                                       defaults to the current directory;
//                                       build*/ and tests/lint_fixtures are
//                                       always skipped)
//   bss_lint --self-test DIR            fixture mode: every bad_<rule>* file
//                                       under DIR must produce >=1 finding
//                                       of that rule; every good_* file must
//                                       produce none
//   bss_lint --list-rules               print the rule catalog
//
// Exit codes: 0 clean, 1 findings (or self-test expectation failures),
// 2 usage error.
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

// --------------------------------------------------------------- rule table

struct RuleInfo {
  std::string_view slug;     ///< finding name, e.g. "no-wallclock"
  std::string_view suppress; ///< suppression token, e.g. "wallclock-ok"
  std::string_view summary;
};

constexpr RuleInfo kRules[] = {
    {"no-wallclock", "wallclock-ok",
     "wall-clock read outside the timing quarantine"},
    {"no-ambient-randomness", "randomness-ok",
     "unseeded randomness source"},
    {"ordered-emission", "ordered-ok",
     "unordered-container iteration feeding canonical output"},
    {"no-pointer-order", "pointer-order-ok",
     "raw pointer value used as an ordering key"},
    {"env-registry", "env-ok",
     "getenv(\"BSS_*\") of a variable missing from src/util/env_registry.h"},
    {"footprint-declared", "footprint-ok",
     "register op set does not match its BSS_FOOTPRINT annotation"},
};

std::string_view suppress_token(std::string_view slug) {
  for (const RuleInfo& rule : kRules) {
    if (rule.slug == slug) return rule.suppress;
  }
  return "";
}

// ------------------------------------------------------------ source views

/// A scanned file with the three views the rules match against.
struct SourceFile {
  std::string path;    ///< display path (as discovered)
  std::string raw;     ///< verbatim text (suppression comments live here)
  std::string code;    ///< comments blanked, string literals kept
  std::string nostr;   ///< comments blanked AND string contents blanked
  std::vector<std::size_t> line_starts;  ///< byte offset of each line (raw)
};

/// Blanks comments (and, when keep_strings is false, string/char literal
/// contents) with spaces, preserving length and newlines so byte offsets and
/// line numbers stay aligned across views.  Handles //, /* */, '...', "..."
/// with escapes, and R"delim(...)delim" raw strings.
std::string blank_view(std::string_view text, bool keep_strings) {
  std::string out(text);
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto blank = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < n; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string_view::npos) end = n;
      blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      end = end == std::string_view::npos ? n : end + 2;
      blank(i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      // Raw string literal: R"delim( ... )delim"
      std::size_t paren = text.find('(', i + 2);
      if (paren == std::string_view::npos) {
        ++i;
        continue;
      }
      const std::string closer =
          ")" + std::string(text.substr(i + 2, paren - (i + 2))) + "\"";
      std::size_t end = text.find(closer, paren + 1);
      end = end == std::string_view::npos ? n : end + closer.size();
      if (!keep_strings) blank(paren + 1, end - closer.size());
      i = end;
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        j += text[j] == '\\' ? 2 : 1;
      }
      const std::size_t end = j < n ? j + 1 : n;
      if (!keep_strings) blank(i + 1, end > i + 1 ? end - 1 : end);
      i = end;
    } else {
      ++i;
    }
  }
  return out;
}

SourceFile load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  SourceFile file;
  file.path = path;
  file.raw = buffer.str();
  file.code = blank_view(file.raw, /*keep_strings=*/true);
  file.nostr = blank_view(file.raw, /*keep_strings=*/false);
  file.line_starts.push_back(0);
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    if (file.raw[i] == '\n') file.line_starts.push_back(i + 1);
  }
  return file;
}

/// 1-based line number of a byte offset.
std::size_t line_of(const SourceFile& file, std::size_t pos) {
  const auto it = std::upper_bound(file.line_starts.begin(),
                                   file.line_starts.end(), pos);
  return static_cast<std::size_t>(it - file.line_starts.begin());
}

std::string_view line_text(const SourceFile& file, std::size_t line) {
  if (line == 0 || line > file.line_starts.size()) return {};
  const std::size_t begin = file.line_starts[line - 1];
  const std::size_t end = line < file.line_starts.size()
                              ? file.line_starts[line] - 1
                              : file.raw.size();
  return std::string_view(file.raw).substr(begin, end - begin);
}

bool is_suppressed(const SourceFile& file, std::size_t line,
                   std::string_view token) {
  const std::string needle = "bss-lint: " + std::string(token) + "(";
  for (const std::size_t candidate : {line, line - 1}) {
    if (candidate == 0) continue;
    if (line_text(file, candidate).find(needle) != std::string_view::npos) {
      return true;
    }
  }
  return false;
}

// ----------------------------------------------------------- small scanners

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when text[pos..] starts the whole word `word` (identifier borders).
bool word_at(std::string_view text, std::size_t pos, std::string_view word) {
  if (text.substr(pos, word.size()) != word) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !ident_char(text[end]);
}

std::size_t skip_ws(std::string_view text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Matches the angle-bracket pair opening at `open` ('<'); npos if unmatched.
std::size_t match_angle(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>') {
      if (--depth == 0) return i;
    }
    if (text[i] == ';') break;  // declarations do not span statements
  }
  return std::string_view::npos;
}

struct Finding {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

void emit(std::vector<Finding>& findings, const SourceFile& file,
          std::size_t line, std::string_view rule, std::string message) {
  if (is_suppressed(file, line, suppress_token(rule))) return;
  findings.push_back(
      {file.path, line, std::string(rule), std::move(message)});
}

std::string normalized(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool path_has_component(const std::string& path, std::string_view component) {
  const std::string norm = "/" + normalized(path) + "/";
  return norm.find("/" + std::string(component) + "/") != std::string::npos;
}

bool path_ends_with(const std::string& path, std::string_view suffix) {
  const std::string norm = normalized(path);
  return norm.size() >= suffix.size() &&
         norm.compare(norm.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ------------------------------------------------------------ rule: wallclock

bool wallclock_quarantined(const std::string& path) {
  // bench/ is the bench timing layer; events.cc/timeline.cc carry the obs
  // timing channel, which the runreport schema quarantines under "timing".
  return path_has_component(path, "bench") ||
         path_ends_with(path, "src/obs/events.cc") ||
         path_ends_with(path, "src/obs/timeline.cc");
}

void check_wallclock(const SourceFile& file, std::vector<Finding>& findings) {
  if (wallclock_quarantined(file.path)) return;
  static constexpr std::string_view kClocks[] = {
      "system_clock",   "steady_clock", "high_resolution_clock",
      "gettimeofday",   "clock_gettime", "localtime",
  };
  for (const std::string_view clock : kClocks) {
    for (std::size_t pos = file.nostr.find(clock); pos != std::string::npos;
         pos = file.nostr.find(clock, pos + 1)) {
      if (!word_at(file.nostr, pos, clock)) continue;
      emit(findings, file, line_of(file, pos), "no-wallclock",
           std::string(clock) +
               " outside the timing quarantine (bench/, obs timing channel)");
    }
  }
}

// ----------------------------------------------------------- rule: randomness

void check_randomness(const SourceFile& file,
                      std::vector<Finding>& findings) {
  const std::string_view text = file.nostr;
  for (std::size_t pos = text.find("random_device"); pos != std::string::npos;
       pos = text.find("random_device", pos + 1)) {
    if (!word_at(text, pos, "random_device")) continue;
    emit(findings, file, line_of(file, pos), "no-ambient-randomness",
         "std::random_device draws entropy the replay cannot reproduce; "
         "plumb a printed seed instead");
  }
  for (const std::string_view call : {"rand", "srand"}) {
    for (std::size_t pos = text.find(call); pos != std::string::npos;
         pos = text.find(call, pos + 1)) {
      if (!word_at(text, pos, call)) continue;
      const std::size_t paren = skip_ws(text, pos + call.size());
      if (paren >= text.size() || text[paren] != '(') continue;
      emit(findings, file, line_of(file, pos), "no-ambient-randomness",
           std::string(call) + "() uses hidden global PRNG state");
    }
  }
  // Argless construction of a std engine: `mt19937 gen;`, `mt19937 gen{};`,
  // `mt19937()`.  A seeded constructor (any argument) passes.
  static constexpr std::string_view kEngines[] = {
      "mt19937",  "mt19937_64",    "default_random_engine",
      "minstd_rand", "minstd_rand0", "knuth_b",
  };
  for (const std::string_view engine : kEngines) {
    for (std::size_t pos = text.find(engine); pos != std::string::npos;
         pos = text.find(engine, pos + 1)) {
      if (!word_at(text, pos, engine)) continue;
      std::size_t cursor = skip_ws(text, pos + engine.size());
      // Optional declarator name.
      while (cursor < text.size() && ident_char(text[cursor])) ++cursor;
      cursor = skip_ws(text, cursor);
      if (cursor >= text.size()) continue;
      const char next = text[cursor];
      bool argless = next == ';';
      if (next == '(' || next == '{') {
        const char closer = next == '(' ? ')' : '}';
        argless = skip_ws(text, cursor + 1) < text.size() &&
                  text[skip_ws(text, cursor + 1)] == closer;
      }
      if (!argless) continue;
      emit(findings, file, line_of(file, pos), "no-ambient-randomness",
           "argless std::" + std::string(engine) +
               " seeds from an unspecified source; pass an explicit seed");
    }
  }
}

// ------------------------------------------------- rule: ordered-emission

/// Brace blocks of the file, innermost-last for any position.
struct Block {
  std::size_t open = 0;
  std::size_t close = 0;
};

std::vector<Block> brace_blocks(std::string_view nostr) {
  std::vector<Block> blocks;
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < nostr.size(); ++i) {
    if (nostr[i] == '{') stack.push_back(i);
    if (nostr[i] == '}' && !stack.empty()) {
      blocks.push_back({stack.back(), i});
      stack.pop_back();
    }
  }
  return blocks;
}

/// The function-like region containing `pos`: the outermost enclosing block
/// whose header is not a namespace/class/struct/enum/union/extern block.
/// Returns nullopt at namespace/class scope.
std::optional<Block> function_region(std::string_view nostr,
                                     const std::vector<Block>& blocks,
                                     std::size_t pos) {
  std::vector<Block> enclosing;
  for (const Block& block : blocks) {
    if (block.open < pos && pos < block.close) enclosing.push_back(block);
  }
  std::sort(enclosing.begin(), enclosing.end(),
            [](const Block& a, const Block& b) { return a.open < b.open; });
  for (const Block& block : enclosing) {
    // Header: text since the previous statement/block boundary.
    std::size_t begin = block.open;
    while (begin > 0) {
      const char c = nostr[begin - 1];
      if (c == ';' || c == '{' || c == '}') break;
      --begin;
    }
    const std::string_view header = nostr.substr(begin, block.open - begin);
    bool scope_block = false;
    for (const std::string_view keyword :
         {"namespace", "class", "struct", "enum", "union", "extern"}) {
      for (std::size_t k = header.find(keyword);
           k != std::string_view::npos; k = header.find(keyword, k + 1)) {
        if (word_at(header, k, keyword)) {
          scope_block = true;
          break;
        }
      }
      if (scope_block) break;
    }
    if (!scope_block) return block;
  }
  return std::nullopt;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  const auto it = std::search(
      haystack.begin(), haystack.end(), needle.begin(), needle.end(),
      [](char a, char b) {
        return std::tolower(static_cast<unsigned char>(a)) ==
               std::tolower(static_cast<unsigned char>(b));
      });
  return it != haystack.end();
}

/// Variable / member names declared with an unordered container type.
std::set<std::string> unordered_names(std::string_view nostr) {
  std::set<std::string> names;
  static constexpr std::string_view kTypes[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const std::string_view type : kTypes) {
    for (std::size_t pos = nostr.find(type); pos != std::string_view::npos;
         pos = nostr.find(type, pos + 1)) {
      if (!word_at(nostr, pos, type)) continue;
      std::size_t cursor = skip_ws(nostr, pos + type.size());
      if (cursor >= nostr.size() || nostr[cursor] != '<') continue;
      const std::size_t close = match_angle(nostr, cursor);
      if (close == std::string_view::npos) continue;
      cursor = skip_ws(nostr, close + 1);
      while (cursor < nostr.size() &&
             (nostr[cursor] == '&' || nostr[cursor] == '*')) {
        cursor = skip_ws(nostr, cursor + 1);
      }
      std::size_t end = cursor;
      while (end < nostr.size() && ident_char(nostr[end])) ++end;
      if (end > cursor) names.insert(std::string(nostr.substr(cursor, end - cursor)));
    }
  }
  return names;
}

void check_ordered_emission(const SourceFile& file,
                            std::vector<Finding>& findings) {
  const std::string_view nostr = file.nostr;
  const std::set<std::string> unordered = unordered_names(nostr);
  if (unordered.empty()) return;
  const std::vector<Block> blocks = brace_blocks(nostr);
  for (std::size_t pos = nostr.find("for"); pos != std::string_view::npos;
       pos = nostr.find("for", pos + 1)) {
    if (!word_at(nostr, pos, "for")) continue;
    const std::size_t open = skip_ws(nostr, pos + 3);
    if (open >= nostr.size() || nostr[open] != '(') continue;
    // Find the range-for colon at paren depth 1 (skip :: scoping).
    int depth = 0;
    std::size_t colon = std::string_view::npos;
    std::size_t close = std::string_view::npos;
    for (std::size_t i = open; i < nostr.size(); ++i) {
      const char c = nostr[i];
      if (c == '(') ++depth;
      if (c == ')') {
        if (--depth == 0) {
          close = i;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string_view::npos &&
          (i + 1 >= nostr.size() || nostr[i + 1] != ':') &&
          (i == 0 || nostr[i - 1] != ':')) {
        colon = i;
      }
    }
    if (colon == std::string_view::npos || close == std::string_view::npos) {
      continue;
    }
    // Last identifier of the range expression, e.g. `shards_` in
    // `*state.shards_` or `map` in `map`.
    const std::string_view range = nostr.substr(colon + 1, close - colon - 1);
    std::size_t end = range.size();
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(range[end - 1])) != 0) {
      --end;
    }
    // `m.items()`-style calls end with ')': the identifier test below simply
    // fails for them; this scanner tracks direct container iteration only.
    std::size_t begin = end;
    while (begin > 0 && ident_char(range[begin - 1])) --begin;
    const std::string name(range.substr(begin, end - begin));
    if (name.empty() || unordered.count(name) == 0) continue;

    const std::optional<Block> region = function_region(nostr, blocks, open);
    if (!region.has_value()) continue;
    const std::string_view region_text =
        nostr.substr(region->open, region->close - region->open);
    // Only functions that feed canonical output are in scope for this rule.
    bool emits = false;
    for (const std::string_view marker :
         {"json", "fingerprint", "merge_from", "artifact", "canonical",
          "emit", "runreport", "dump("}) {
      if (contains_ci(region_text, marker)) {
        emits = true;
        break;
      }
    }
    if (!emits) continue;
    // A sort downstream of the loop re-establishes a canonical order.
    const std::string_view after =
        nostr.substr(pos, region->close - pos);
    bool sorted = false;
    for (const std::string_view sorter : {"sort", "stable_sort"}) {
      for (std::size_t k = after.find(sorter); k != std::string_view::npos;
           k = after.find(sorter, k + 1)) {
        const std::size_t call = skip_ws(after, k + sorter.size());
        if (word_at(after, k, sorter) && call < after.size() &&
            after[call] == '(') {
          sorted = true;
          break;
        }
      }
      if (sorted) break;
    }
    if (sorted) continue;
    emit(findings, file, line_of(file, pos), "ordered-emission",
         "iteration over unordered container '" + name +
             "' in a function that feeds canonical output; sort first or "
             "justify with ordered-ok(...)");
  }
}

// ----------------------------------------------- rule: no-pointer-order

void check_pointer_order(const SourceFile& file,
                         std::vector<Finding>& findings) {
  const std::string_view nostr = file.nostr;
  // std::less over a pointer type.
  for (std::size_t pos = nostr.find("less"); pos != std::string_view::npos;
       pos = nostr.find("less", pos + 1)) {
    if (!word_at(nostr, pos, "less")) continue;
    const std::size_t open = skip_ws(nostr, pos + 4);
    if (open >= nostr.size() || nostr[open] != '<') continue;
    const std::size_t close = match_angle(nostr, open);
    if (close == std::string_view::npos) continue;
    const std::string_view arg = nostr.substr(open + 1, close - open - 1);
    if (arg.find('*') != std::string_view::npos) {
      emit(findings, file, line_of(file, pos), "no-pointer-order",
           "std::less over a pointer type orders by address");
    }
  }
  // Ordered associative container keyed on a pointer.
  static constexpr std::string_view kContainers[] = {"map", "set", "multimap",
                                                     "multiset"};
  for (const std::string_view container : kContainers) {
    for (std::size_t pos = nostr.find(container);
         pos != std::string_view::npos;
         pos = nostr.find(container, pos + 1)) {
      if (!word_at(nostr, pos, container)) continue;
      // unordered_* variants are rule 3's concern, not ordering hazards.
      if (pos >= 10 && nostr.substr(pos - 10, 10) == "unordered_") continue;
      const std::size_t open = skip_ws(nostr, pos + container.size());
      if (open >= nostr.size() || nostr[open] != '<') continue;
      const std::size_t close = match_angle(nostr, open);
      if (close == std::string_view::npos) continue;
      // First top-level template argument == the key type.
      std::string_view args = nostr.substr(open + 1, close - open - 1);
      int depth = 0;
      std::size_t key_end = args.size();
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == '<' || args[i] == '(') ++depth;
        if (args[i] == '>' || args[i] == ')') --depth;
        if (args[i] == ',' && depth == 0) {
          key_end = i;
          break;
        }
      }
      std::string_view key = args.substr(0, key_end);
      while (!key.empty() &&
             std::isspace(static_cast<unsigned char>(key.back())) != 0) {
        key.remove_suffix(1);
      }
      if (!key.empty() && key.back() == '*') {
        emit(findings, file, line_of(file, pos), "no-pointer-order",
             "ordered " + std::string(container) +
                 " keyed on a raw pointer iterates in allocation order");
      }
    }
  }
  // Pointer identity laundered through an integer ((u)intptr_t).
  for (std::size_t pos = nostr.find("reinterpret_cast");
       pos != std::string_view::npos;
       pos = nostr.find("reinterpret_cast", pos + 1)) {
    const std::size_t open = skip_ws(nostr, pos + 16);
    if (open >= nostr.size() || nostr[open] != '<') continue;
    const std::size_t close = match_angle(nostr, open);
    if (close == std::string_view::npos) continue;
    const std::string_view arg = nostr.substr(open + 1, close - open - 1);
    if (arg.find("intptr_t") != std::string_view::npos) {
      emit(findings, file, line_of(file, pos), "no-pointer-order",
           "reinterpret_cast<(u)intptr_t> makes an address "
           "orderable/hashable");
    }
  }
}

// -------------------------------------------------- rule: env-registry

/// Declared BSS_* names: `X(BSS_NAME, ...)` rows of the env-registry table
/// (src/util/env_registry.h in the tree; any scanned file may contribute,
/// which is what lets the fixtures self-describe).
std::set<std::string> collect_env_registry(
    const std::vector<SourceFile>& files) {
  std::set<std::string> declared;
  for (const SourceFile& file : files) {
    std::istringstream lines{file.nostr};
    std::string line;
    while (std::getline(lines, line)) {
      const std::size_t x = line.find("X(BSS_");
      if (x == std::string::npos) continue;
      std::size_t begin = x + 2;
      std::size_t end = begin;
      while (end < line.size() && ident_char(line[end])) ++end;
      if (end > begin) declared.insert(line.substr(begin, end - begin));
    }
  }
  return declared;
}

void check_env_registry(const SourceFile& file,
                        const std::set<std::string>& declared,
                        std::vector<Finding>& findings) {
  const std::string_view code = file.code;
  for (std::size_t pos = code.find("getenv"); pos != std::string_view::npos;
       pos = code.find("getenv", pos + 1)) {
    if (!word_at(code, pos, "getenv")) continue;
    std::size_t cursor = skip_ws(code, pos + 6);
    if (cursor >= code.size() || code[cursor] != '(') continue;
    cursor = skip_ws(code, cursor + 1);
    if (cursor >= code.size() || code[cursor] != '"') continue;
    std::size_t begin = cursor + 1;
    std::size_t end = begin;
    while (end < code.size() && ident_char(code[end])) ++end;
    const std::string name(code.substr(begin, end - begin));
    if (name.rfind("BSS_", 0) != 0) continue;
    if (declared.count(name) != 0) continue;
    emit(findings, file, line_of(file, pos), "env-registry",
         "getenv(\"" + name +
             "\") is not declared in src/util/env_registry.h");
  }
}

// --------------------------------------------- rule: footprint-declared

void check_footprint(const SourceFile& file, std::vector<Finding>& findings) {
  if (!path_has_component(file.path, "registers") &&
      !path_has_component(file.path, "lint_fixtures")) {
    return;
  }
  const std::string_view code = file.code;
  // Op names the implementation declares to the scheduler.
  std::map<std::string, std::size_t> sync_ops;  // op -> first line
  for (std::size_t pos = code.find(".sync("); pos != std::string_view::npos;
       pos = code.find(".sync(", pos + 1)) {
    std::size_t cursor = skip_ws(code, pos + 6);
    if (cursor >= code.size() || code[cursor] != '{') continue;
    // Skip the object-name expression up to the first top-level comma.
    int depth = 0;
    while (cursor < code.size()) {
      const char c = code[cursor];
      if (c == '(' || c == '{' || c == '[') ++depth;
      if (c == ')' || c == '}' || c == ']') --depth;
      if (c == ',' && depth == 1) break;
      ++cursor;
    }
    cursor = skip_ws(code, cursor + 1);
    if (cursor >= code.size() || code[cursor] != '"') continue;
    const std::size_t begin = cursor + 1;
    std::size_t end = begin;
    while (end < code.size() && code[end] != '"') ++end;
    const std::string op(code.substr(begin, end - begin));
    if (!op.empty()) sync_ops.emplace(op, line_of(file, pos));
  }
  const bool stamps_tokens =
      code.find("access_token()") != std::string_view::npos;
  if (sync_ops.empty() || !stamps_tokens) return;

  // Ops the BSS_FOOTPRINT annotations declare.
  std::map<std::string, std::size_t> declared_ops;
  std::size_t annotation_line = 0;
  for (std::size_t pos = code.find("BSS_FOOTPRINT(");
       pos != std::string_view::npos;
       pos = code.find("BSS_FOOTPRINT(", pos + 1)) {
    // Skip the macro's own #define.
    if (line_text(file, line_of(file, pos)).find("#define") !=
        std::string_view::npos) {
      continue;
    }
    annotation_line = line_of(file, pos);
    std::size_t cursor = pos + 14;
    bool first = true;  // first argument is the class name
    while (cursor < code.size() && code[cursor] != ')') {
      cursor = skip_ws(code, cursor);
      std::size_t end = cursor;
      while (end < code.size() && ident_char(code[end])) ++end;
      if (!first && end > cursor) {
        declared_ops.emplace(std::string(code.substr(cursor, end - cursor)),
                             annotation_line);
      }
      first = false;
      cursor = skip_ws(code, end);
      if (cursor < code.size() && code[cursor] == ',') ++cursor;
      if (end == cursor && code[cursor] != ',' && code[cursor] != ')') break;
    }
  }

  if (annotation_line == 0) {
    emit(findings, file, sync_ops.begin()->second, "footprint-declared",
         "token-stamping register has no BSS_FOOTPRINT annotation "
         "(registers/footprint.h)");
    return;
  }
  for (const auto& [op, line] : sync_ops) {
    if (declared_ops.count(op) == 0) {
      emit(findings, file, line, "footprint-declared",
           "sync op \"" + op + "\" missing from the BSS_FOOTPRINT annotation");
    }
  }
  for (const auto& [op, line] : declared_ops) {
    if (sync_ops.count(op) == 0) {
      emit(findings, file, line, "footprint-declared",
           "BSS_FOOTPRINT declares op \"" + op +
               "\" that no ctx.sync({...}) in this file performs");
    }
  }
}

// ------------------------------------------------------------------ driver

std::vector<Finding> analyze(const SourceFile& file,
                             const std::set<std::string>& env_registry) {
  std::vector<Finding> findings;
  check_wallclock(file, findings);
  check_randomness(file, findings);
  check_ordered_emission(file, findings);
  check_pointer_order(file, findings);
  check_env_registry(file, env_registry, findings);
  check_footprint(file, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return findings;
}

bool lintable_source(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool skipped_dir(const fs::path& path) {
  const std::string name = path.filename().string();
  return name.rfind("build", 0) == 0 || name == "lint_fixtures" ||
         name == "corpus" || name == ".git";
}

std::vector<std::string> discover(const std::vector<fs::path>& roots) {
  std::vector<std::string> files;
  for (const fs::path& root : roots) {
    if (fs::is_regular_file(root)) {
      files.push_back(root.string());
      continue;
    }
    if (!fs::is_directory(root)) continue;
    fs::recursive_directory_iterator it(root), end;
    while (it != end) {
      if (it->is_directory() && skipped_dir(it->path())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && lintable_source(it->path())) {
        files.push_back(it->path().string());
      }
      ++it;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void print_findings(const std::vector<Finding>& findings) {
  for (const Finding& finding : findings) {
    std::cout << finding.path << ":" << finding.line << ": ["
              << finding.rule << "] " << finding.message << " (suppress: // "
              << "bss-lint: " << suppress_token(finding.rule)
              << "(reason))\n";
  }
}

int run_self_test(const fs::path& dir) {
  const std::vector<std::string> paths = discover({dir});
  if (paths.empty()) {
    std::cerr << "bss_lint: no fixtures under " << dir << "\n";
    return 2;
  }
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) files.push_back(load_file(path));
  const std::set<std::string> env_registry = collect_env_registry(files);

  int fixtures = 0;
  int failures = 0;
  for (const SourceFile& file : files) {
    const std::string stem = fs::path(file.path).stem().string();
    const bool bad = stem.rfind("bad_", 0) == 0;
    const bool good = stem.rfind("good_", 0) == 0;
    if (!bad && !good) continue;
    ++fixtures;
    std::string slug = stem.substr(bad ? 4 : 5);
    std::replace(slug.begin(), slug.end(), '_', '-');
    const std::vector<Finding> findings = analyze(file, env_registry);
    if (good) {
      if (!findings.empty()) {
        ++failures;
        std::cout << "FAIL " << file.path << ": expected clean, got "
                  << findings.size() << " finding(s)\n";
        print_findings(findings);
      } else {
        std::cout << "ok   " << file.path << " (clean)\n";
      }
      continue;
    }
    // bad_<rule...>: the fixture name must start with a rule slug, and the
    // file must trigger that rule at least once.
    std::string expected;
    for (const RuleInfo& rule : kRules) {
      if (slug.rfind(rule.slug, 0) == 0) expected = rule.slug;
    }
    if (expected.empty()) {
      ++failures;
      std::cout << "FAIL " << file.path << ": fixture names no known rule\n";
      continue;
    }
    const bool hit = std::any_of(
        findings.begin(), findings.end(),
        [&](const Finding& finding) { return finding.rule == expected; });
    if (!hit) {
      ++failures;
      std::cout << "FAIL " << file.path << ": expected a " << expected
                << " finding, got none\n";
      print_findings(findings);
    } else {
      std::cout << "ok   " << file.path << " (" << expected << ")\n";
    }
  }
  std::cout << "self-test: " << fixtures << " fixtures, " << failures
            << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

void print_rules() {
  for (const RuleInfo& rule : kRules) {
    std::cout << rule.slug << "\n    " << rule.summary
              << "\n    suppress: // bss-lint: " << rule.suppress
              << "(reason)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<fs::path> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--self-test") {
      if (i + 1 >= argc) {
        std::cerr << "bss_lint: --self-test needs a fixture directory\n";
        return 2;
      }
      return run_self_test(argv[i + 1]);
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "bss_lint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "usage: bss_lint [--root DIR] [--self-test DIR] "
                   "[--list-rules] [PATH...]\n";
      return 2;
    }
    targets.push_back(root / fs::path(arg));
  }
  if (targets.empty()) {
    for (const char* dir : {"src", "bench", "tools", "examples"}) {
      targets.push_back(root / dir);
    }
  }

  const std::vector<std::string> paths = discover(targets);
  if (paths.empty()) {
    std::cerr << "bss_lint: nothing to scan\n";
    return 2;
  }
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) files.push_back(load_file(path));
  const std::set<std::string> env_registry = collect_env_registry(files);

  std::size_t total = 0;
  for (const SourceFile& file : files) {
    const std::vector<Finding> findings = analyze(file, env_registry);
    print_findings(findings);
    total += findings.size();
  }
  if (total != 0) {
    std::cerr << "bss_lint: " << total << " finding(s) in " << paths.size()
              << " files\n";
    return 1;
  }
  std::cout << "bss_lint: " << paths.size() << " files clean\n";
  return 0;
}
