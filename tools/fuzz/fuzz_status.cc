// Fuzz target for the bss-status v1 heartbeat parser (Status::from_artifact
// and the validate_status gate report_check runs in CI).
//
// Oracles, beyond "does not crash":
//   1. validate/parse agreement, both directions: a document the validator
//      passes clean must round-trip through the typed Status parse, and a
//      document the typed parse accepts must be validator-clean (the two
//      run the same checks — from_artifact is validate + extraction).
//   2. The typed round trip is a byte fixed point: to_json() of a parsed
//      Status re-validates clean, re-parses, and dumps byte-identically
//      (absent⟺empty canonicalization makes this exact).
//   3. The canonical-JSON fixed point on any parseable input, same as the
//      other artifact fuzzers.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json.h"
#include "obs/status.h"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_status: oracle failed: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 20)) return 0;  // parser is linear; cap work per input
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Layer 1: the raw canonical-JSON parser and its fixed point.
  std::string error;
  const auto value = bss::obs::json::Value::parse(text, &error);
  if (value.has_value()) {
    const std::string dumped = value->dump();
    const auto again = bss::obs::json::Value::parse(dumped, &error);
    if (!again.has_value()) die("dump() of a parsed value failed to re-parse");
    if (!(*again == *value)) die("parse(dump(v)) != v");
    if (again->dump() != dumped) die("dump is not a fixed point");
  }

  // Layer 2: the status schema gate, both directions.
  const auto gate = bss::obs::validate_status(text);
  const auto status = bss::obs::Status::from_artifact(text, &error);
  if (gate.empty() != status.has_value()) {
    die(gate.empty() ? "validator accepted what from_artifact rejected"
                     : "from_artifact accepted what the validator rejected");
  }

  // Layer 3: the typed round trip is exact.
  if (status.has_value()) {
    const std::string emitted = status->to_json();
    if (!bss::obs::validate_status(emitted).empty()) {
      die("to_json() of a parsed Status fails its own validator");
    }
    const auto reparsed = bss::obs::Status::from_artifact(emitted, &error);
    if (!reparsed.has_value()) {
      die("to_json() of a parsed Status fails to re-parse");
    }
    if (reparsed->to_json() != emitted) {
      die("Status to_json is not a fixed point");
    }
  }
  return 0;
}
