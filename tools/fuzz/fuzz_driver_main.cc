// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
// (the default: the repo toolchain is gcc, libFuzzer ships with clang).
// Each harness defines LLVMFuzzerTestOneInput; this main replays corpus
// files through it and can deterministically mutate them.
//
//   fuzz_checkpoint corpus/checkpoint            # replay every file
//   fuzz_checkpoint --mutate 400 --seed 7 FILE   # + 400 seeded mutants each
//
// Mutation is driven by a self-contained splitmix64 stream, so a given
// (corpus, --mutate, --seed) triple exercises byte-identical inputs on
// every run and every machine — the ctest fuzz smoke depends on that.
// Crashes surface as crashes: the driver adds no handlers, so an abort()
// in a harness oracle or an ASan report fails the test run loudly.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

// Deliberately not bss::Rng: the driver must stay dependency-free so the
// harnesses link only the library under test.
// bss-lint: randomness-ok(seeded splitmix64, seed comes from --seed)
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Tokens the three artifact grammars actually react to; splicing them in
// reaches far deeper than byte noise alone.
const char* const kDictionary[] = {
    "bss-counterexample v1", "bss-counterexample v2", "bss-checkpoint v1",
    "bss-runreport v1",      "schema",                "processes",
    "shrunk_from",           "decisions",             "frontier",
    "timing",                "schedules_per_second",  "stats",
    "1e999",                 "-1",                    "18446744073709551616",
    "nan",                   "null",                  "\"\"",
    "{",                     "}",                     "[",
    "]",                     ":",                     ",",
    "\\u0000",               "0x7f",                  " c 3 17",
};

std::string mutate(const std::string& base, std::uint64_t& state) {
  std::string out = base;
  const int edits = 1 + static_cast<int>(splitmix64(state) % 4);
  for (int e = 0; e < edits; ++e) {
    const std::uint64_t roll = splitmix64(state) % 6;
    const std::size_t at =
        out.empty() ? 0 : static_cast<std::size_t>(splitmix64(state) %
                                                   (out.size() + 1));
    switch (roll) {
      case 0:  // flip a byte
        if (!out.empty() && at < out.size()) {
          out[at] = static_cast<char>(splitmix64(state) & 0xff);
        }
        break;
      case 1:  // insert a byte
        out.insert(at, 1, static_cast<char>(splitmix64(state) & 0xff));
        break;
      case 2:  // delete a span
        if (!out.empty() && at < out.size()) {
          out.erase(at, 1 + splitmix64(state) % 8);
        }
        break;
      case 3:  // splice a dictionary token
        out.insert(at, kDictionary[splitmix64(state) %
                                   (sizeof(kDictionary) /
                                    sizeof(kDictionary[0]))]);
        break;
      case 4:  // truncate
        out.resize(at);
        break;
      default:  // duplicate a prefix chunk
        out.insert(at, out.substr(0, splitmix64(state) % (out.size() + 1)));
        break;
    }
    if (out.size() > (1u << 20)) out.resize(1u << 20);  // keep mutants bounded
  }
  return out;
}

void run_one(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(input.data()),
                         input.size());
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--mutate N] [--seed S] <file-or-dir>...\n"
               "Replays each corpus file through the fuzz entry point; with\n"
               "--mutate, additionally runs N deterministic mutants per file.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  long mutants = 0;
  std::uint64_t seed = 1;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mutate" && i + 1 < argc) {
      mutants = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  // Expand directories into a sorted file list so the replay (and the
  // mutation stream consumed per file) is order-stable across platforms.
  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    if (std::filesystem::is_directory(in)) {
      for (const auto& entry : std::filesystem::directory_iterator(in)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(in);
    }
  }
  std::sort(files.begin(), files.end());

  long executed = 0;
  for (const std::string& path : files) {
    std::ifstream stream(path, std::ios::binary);
    if (!stream) {
      std::fprintf(stderr, "fuzz driver: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    const std::string base = buffer.str();
    run_one(base);
    ++executed;
    std::uint64_t state = seed;
    for (long m = 0; m < mutants; ++m) {
      run_one(mutate(base, state));
      ++executed;
    }
  }
  std::fprintf(stderr, "fuzz driver: %ld input(s) over %zu file(s), ok\n",
               executed, files.size());
  return 0;
}
