// Fuzz target for the bss-counterexample artifact parser
// (Counterexample::from_artifact), the oldest and least structured of the
// three artifact grammars: a line-oriented token format, not JSON.
//
// Oracles, beyond "does not crash":
//   1. An accepted artifact re-serializes (to_artifact) into text the
//      parser accepts again.
//   2. to_artifact is a fixed point: serialize(parse(serialize(x))) is
//      byte-identical to serialize(x).  Replay tooling diffs artifacts
//      byte-for-byte, so drift here breaks real workflows.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "explore/explore.h"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_counterexample: oracle failed: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 20)) return 0;  // parser is linear; cap work per input
  const std::string text(reinterpret_cast<const char*>(data), size);

  const auto parsed = bss::explore::Counterexample::from_artifact(text);
  if (!parsed.has_value()) return 0;

  const std::string round = parsed->to_artifact();
  const auto reparsed = bss::explore::Counterexample::from_artifact(round);
  if (!reparsed.has_value()) die("accepted artifact rejected after round-trip");
  if (reparsed->to_artifact() != round) die("to_artifact is not a fixed point");
  return 0;
}
