// Fuzz target for the bss-checkpoint v1 parser (Checkpoint::from_artifact
// plus the validate_checkpoint CI-gate wrapper).  Checkpoints are the
// durable resume state of long exploration campaigns, so a parser crash
// here turns a corrupt file into a lost campaign.
//
// Oracles, beyond "does not crash":
//   1. from_artifact and validate_checkpoint agree: parse success iff the
//      validator reports no errors.
//   2. A rejected artifact carries a non-empty one-line reason.
//   3. to_artifact of an accepted checkpoint is a fixed point under
//      re-parse (the header promises dump(parse(text)) byte-stability).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "explore/checkpoint.h"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_checkpoint: oracle failed: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 20)) return 0;  // parser is linear; cap work per input
  const std::string text(reinterpret_cast<const char*>(data), size);

  std::string error;
  const auto parsed = bss::explore::Checkpoint::from_artifact(text, &error);
  const auto gate = bss::explore::validate_checkpoint(text);
  if (parsed.has_value() != gate.empty()) {
    die("from_artifact and validate_checkpoint disagree");
  }
  if (!parsed.has_value()) {
    if (error.empty()) die("rejection without a reason");
    return 0;
  }

  const std::string round = parsed->to_artifact();
  const auto reparsed = bss::explore::Checkpoint::from_artifact(round, &error);
  if (!reparsed.has_value()) die("accepted artifact rejected after round-trip");
  if (reparsed->to_artifact() != round) die("to_artifact is not a fixed point");
  return 0;
}
