// Fuzz target for the bss-runreport v1 parser (RunReport::parse, the
// validate_runreport CI gate, and — transitively — the canonical JSON
// parser in src/obs/json.cc, which is the widest attack surface of the
// three artifact grammars).
//
// Oracles, beyond "does not crash":
//   1. If the full validator is satisfied, the lighter parse() gate must
//      accept too (validate ⊆ parse in strictness, never the reverse).
//   2. The canonical-JSON fixed point: any text json::Value::parse accepts
//      re-parses from its own dump() into an equal value, and dump() of
//      that re-parse is byte-identical.
//   3. Accessors on a parsed report (kind/producer/stats) never crash,
//      whatever shape the JSON took.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json.h"
#include "obs/runreport.h"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_runreport: oracle failed: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 20)) return 0;  // parser is linear; cap work per input
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Layer 1: the raw canonical-JSON parser and its fixed point.
  std::string error;
  const auto value = bss::obs::json::Value::parse(text, &error);
  if (value.has_value()) {
    const std::string dumped = value->dump();
    const auto again = bss::obs::json::Value::parse(dumped, &error);
    if (!again.has_value()) die("dump() of a parsed value failed to re-parse");
    if (!(*again == *value)) die("parse(dump(v)) != v");
    if (again->dump() != dumped) die("dump is not a fixed point");
  }

  // Layer 2: the runreport schema gate on top.
  const auto report = bss::obs::RunReport::parse(text, &error);
  const auto gate = bss::obs::validate_runreport(text);
  if (gate.empty() && !report.has_value()) {
    die("validator accepted what RunReport::parse rejected");
  }
  if (report.has_value()) {
    // Accessors must be total: they fall back, never crash, on odd shapes.
    (void)report->kind();
    (void)report->producer();
    (void)report->system();
    (void)report->stat("schedules");
    (void)report->stats();
    (void)report->rows();
  }
  return 0;
}
