// report_check — the CI gate for `bss-runreport v1`, `bss-checkpoint v1`
// and `bss-status v1` artifacts.
//
// Validates every file named on the command line, dispatching on the
// document's own schema string through ONE gate table: checkpoints go
// through the checkpoint validator (full structural validation — frontier
// frames, pid token ranges, embedded counterexamples), status heartbeats
// through the status validator (closed counter set, worker/profile/timing
// sections), and everything else — including documents whose schema line
// is missing or unreadable — through the runreport validator, whose
// diagnostics cover the missing/unknown-schema cases.  Parse failure, a
// missing or unknown schema version, unknown top-level keys (schema drift
// must bump the version, not fork the format) and wrong-typed known keys
// are each reported with the file name, and any finding fails the whole
// invocation.  Prints one OK line per clean file so the CI log shows what
// was actually checked.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "explore/checkpoint.h"
#include "obs/json.h"
#include "obs/runreport.h"
#include "obs/status.h"

namespace {

/// The document's own schema string ("" when unreadable — the fallback
/// validator will produce the real diagnostic).
std::string sniff_schema(const std::string& text) {
  const auto value = bss::obs::json::Value::parse(text);
  if (!value.has_value() || !value->is_object()) return "";
  const bss::obs::json::Value* schema = value->find("schema");
  return schema != nullptr && schema->is_string() ? schema->as_string() : "";
}

std::string checkpoint_ok_line(const std::string& text) {
  const auto checkpoint = bss::explore::Checkpoint::from_artifact(text);
  char line[160];
  std::snprintf(line, sizeof(line),
                "%s for %s, seq %llu, %s, %zu frontier units",
                std::string(bss::explore::kCheckpointSchema).c_str(),
                checkpoint->system.c_str(),
                static_cast<unsigned long long>(checkpoint->seq),
                checkpoint->complete ? "complete" : "in progress",
                checkpoint->frontier.size());
  return line;
}

std::string status_ok_line(const std::string& text) {
  const auto status = bss::obs::Status::from_artifact(text);
  char line[160];
  std::snprintf(line, sizeof(line),
                "%s from %s, seq %llu, %s, %llu schedules",
                std::string(bss::obs::kStatusSchema).c_str(),
                status->producer.c_str(),
                static_cast<unsigned long long>(status->seq),
                status->state.c_str(),
                static_cast<unsigned long long>(status->schedules));
  return line;
}

std::string runreport_ok_line(const std::string& text) {
  const auto report = bss::obs::RunReport::parse(text);
  char line[160];
  std::snprintf(line, sizeof(line), "%s from %s, %zu rows",
                report->kind().c_str(), report->producer().c_str(),
                report->rows() ? report->rows()->size() : std::size_t{0});
  return line;
}

/// One schema the gate understands: the sniffed schema string it claims,
/// the validator producing the error list, and the OK-line renderer (only
/// called after the validator returned clean, so the typed parse cannot
/// fail).  The runreport entry doubles as the fallback for unknown or
/// missing schema strings — its validator owns those diagnostics.
struct SchemaGate {
  std::string_view schema;
  std::vector<std::string> (*validate)(std::string_view);
  std::string (*ok_line)(const std::string&);
};

constexpr SchemaGate kGates[] = {
    {bss::explore::kCheckpointSchema, bss::explore::validate_checkpoint,
     checkpoint_ok_line},
    {bss::obs::kStatusSchema, bss::obs::validate_status, status_ok_line},
    // Fallback entry — must stay last; dispatch stops at the first match
    // and an empty schema string matches nothing above.
    {bss::obs::kRunReportSchema, bss::obs::validate_runreport,
     runreport_ok_line},
};

const SchemaGate& gate_for(const std::string& schema) {
  for (const SchemaGate& gate : kGates) {
    if (gate.schema == schema) return gate;
  }
  return kGates[sizeof(kGates) / sizeof(kGates[0]) - 1];
}

bool check_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const SchemaGate& gate = gate_for(sniff_schema(text));
  const std::vector<std::string> errors = gate.validate(text);
  for (const std::string& error : errors) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
  }
  if (!errors.empty()) return false;
  std::printf("%s: OK (%s)\n", path.c_str(), gate.ok_line(text).c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s REPORT.json [REPORT.json ...]\n"
                 "validates bss-runreport v1, bss-checkpoint v1 and "
                 "bss-status v1 artifacts (dispatching on the schema "
                 "string); any schema error fails the run\n",
                 argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    if (!check_file(argv[i])) ok = false;
  }
  return ok ? 0 : 1;
}
