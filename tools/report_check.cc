// report_check — the CI gate for `bss-runreport v1` artifacts.
//
// Validates every file named on the command line against the runreport
// schema: parse failure, a missing or unknown schema version, unknown
// top-level keys (schema drift must bump the version, not fork the format)
// and wrong-typed known keys are each reported with the file name, and any
// finding fails the whole invocation.  Prints one OK line per clean file so
// the CI log shows what was actually checked.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/runreport.h"

namespace {

bool check_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::vector<std::string> errors =
      bss::obs::validate_runreport(buffer.str());
  for (const std::string& error : errors) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
  }
  if (!errors.empty()) return false;
  const auto report = bss::obs::RunReport::parse(buffer.str());
  std::printf("%s: OK (%s from %s, %zu rows)\n", path.c_str(),
              report->kind().c_str(), report->producer().c_str(),
              report->rows() ? report->rows()->size() : 0);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s REPORT.json [REPORT.json ...]\n"
                 "validates bss-runreport v1 artifacts; any schema error "
                 "fails the run\n",
                 argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    if (!check_file(argv[i])) ok = false;
  }
  return ok ? 0 : 1;
}
