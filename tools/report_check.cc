// report_check — the CI gate for `bss-runreport v1` and `bss-checkpoint v1`
// artifacts.
//
// Validates every file named on the command line, dispatching on the
// document's own schema string: runreports go through the runreport
// validator, checkpoints through the checkpoint validator (full structural
// validation — frontier frames, pid token ranges, embedded counterexamples).
// Parse failure, a missing or unknown schema version, unknown top-level keys
// (schema drift must bump the version, not fork the format) and wrong-typed
// known keys are each reported with the file name, and any finding fails the
// whole invocation.  Prints one OK line per clean file so the CI log shows
// what was actually checked.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "explore/checkpoint.h"
#include "obs/json.h"
#include "obs/runreport.h"

namespace {

/// The document's own schema string ("" when unreadable — the per-schema
/// validator will produce the real diagnostic).
std::string sniff_schema(const std::string& text) {
  const auto value = bss::obs::json::Value::parse(text);
  if (!value.has_value() || !value->is_object()) return "";
  const bss::obs::json::Value* schema = value->find("schema");
  return schema != nullptr && schema->is_string() ? schema->as_string() : "";
}

bool check_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  if (sniff_schema(text) == bss::explore::kCheckpointSchema) {
    const std::vector<std::string> errors =
        bss::explore::validate_checkpoint(text);
    for (const std::string& error : errors) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    }
    if (!errors.empty()) return false;
    const auto checkpoint = bss::explore::Checkpoint::from_artifact(text);
    std::printf("%s: OK (%s for %s, seq %llu, %s, %zu frontier units)\n",
                path.c_str(),
                std::string(bss::explore::kCheckpointSchema).c_str(),
                checkpoint->system.c_str(),
                static_cast<unsigned long long>(checkpoint->seq),
                checkpoint->complete ? "complete" : "in progress",
                checkpoint->frontier.size());
    return true;
  }

  const std::vector<std::string> errors = bss::obs::validate_runreport(text);
  for (const std::string& error : errors) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
  }
  if (!errors.empty()) return false;
  const auto report = bss::obs::RunReport::parse(text);
  std::printf("%s: OK (%s from %s, %zu rows)\n", path.c_str(),
              report->kind().c_str(), report->producer().c_str(),
              report->rows() ? report->rows()->size() : 0);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s REPORT.json [REPORT.json ...]\n"
                 "validates bss-runreport v1 and bss-checkpoint v1 "
                 "artifacts (dispatching on the schema string); any schema "
                 "error fails the run\n",
                 argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    if (!check_file(argv[i])) ok = false;
  }
  return ok ? 0 : 1;
}
