file(REMOVE_RECURSE
  "CMakeFiles/leader_worker_pool.dir/leader_worker_pool.cpp.o"
  "CMakeFiles/leader_worker_pool.dir/leader_worker_pool.cpp.o.d"
  "leader_worker_pool"
  "leader_worker_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leader_worker_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
