# Empty compiler generated dependencies file for leader_worker_pool.
# This may be replaced when dependencies are built.
