file(REMOVE_RECURSE
  "CMakeFiles/reduction_walkthrough.dir/reduction_walkthrough.cpp.o"
  "CMakeFiles/reduction_walkthrough.dir/reduction_walkthrough.cpp.o.d"
  "reduction_walkthrough"
  "reduction_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
