# Empty dependencies file for reduction_walkthrough.
# This may be replaced when dependencies are built.
