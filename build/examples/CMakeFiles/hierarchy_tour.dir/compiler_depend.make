# Empty compiler generated dependencies file for hierarchy_tour.
# This may be replaced when dependencies are built.
