# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_registers[1]_include.cmake")
include("/root/repo/build/tests/test_election[1]_include.cmake")
include("/root/repo/build/tests/test_game[1]_include.cmake")
include("/root/repo/build/tests/test_checker[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_burns[1]_include.cmake")
include("/root/repo/build/tests/test_emulation[1]_include.cmake")
include("/root/repo/build/tests/test_linearizability[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_incremental[1]_include.cmake")
