# Empty compiler generated dependencies file for test_burns.
# This may be replaced when dependencies are built.
