file(REMOVE_RECURSE
  "CMakeFiles/test_burns.dir/test_burns.cc.o"
  "CMakeFiles/test_burns.dir/test_burns.cc.o.d"
  "test_burns"
  "test_burns.pdb"
  "test_burns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_burns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
