file(REMOVE_RECURSE
  "CMakeFiles/test_linearizability.dir/test_linearizability.cc.o"
  "CMakeFiles/test_linearizability.dir/test_linearizability.cc.o.d"
  "test_linearizability"
  "test_linearizability.pdb"
  "test_linearizability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linearizability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
