# Empty compiler generated dependencies file for test_runtime_incremental.
# This may be replaced when dependencies are built.
