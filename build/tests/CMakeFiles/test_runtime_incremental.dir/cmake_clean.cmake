file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_incremental.dir/test_runtime_incremental.cc.o"
  "CMakeFiles/test_runtime_incremental.dir/test_runtime_incremental.cc.o.d"
  "test_runtime_incremental"
  "test_runtime_incremental.pdb"
  "test_runtime_incremental[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
