file(REMOVE_RECURSE
  "CMakeFiles/test_emulation.dir/test_emulation.cc.o"
  "CMakeFiles/test_emulation.dir/test_emulation.cc.o.d"
  "test_emulation"
  "test_emulation.pdb"
  "test_emulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
