file(REMOVE_RECURSE
  "libbss_emulation.a"
)
