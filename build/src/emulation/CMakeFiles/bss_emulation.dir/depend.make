# Empty dependencies file for bss_emulation.
# This may be replaced when dependencies are built.
