file(REMOVE_RECURSE
  "CMakeFiles/bss_emulation.dir/board.cc.o"
  "CMakeFiles/bss_emulation.dir/board.cc.o.d"
  "CMakeFiles/bss_emulation.dir/driver.cc.o"
  "CMakeFiles/bss_emulation.dir/driver.cc.o.d"
  "CMakeFiles/bss_emulation.dir/excess.cc.o"
  "CMakeFiles/bss_emulation.dir/excess.cc.o.d"
  "CMakeFiles/bss_emulation.dir/history_tree.cc.o"
  "CMakeFiles/bss_emulation.dir/history_tree.cc.o.d"
  "CMakeFiles/bss_emulation.dir/reduction_check.cc.o"
  "CMakeFiles/bss_emulation.dir/reduction_check.cc.o.d"
  "CMakeFiles/bss_emulation.dir/stable_components.cc.o"
  "CMakeFiles/bss_emulation.dir/stable_components.cc.o.d"
  "libbss_emulation.a"
  "libbss_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bss_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
