
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emulation/board.cc" "src/emulation/CMakeFiles/bss_emulation.dir/board.cc.o" "gcc" "src/emulation/CMakeFiles/bss_emulation.dir/board.cc.o.d"
  "/root/repo/src/emulation/driver.cc" "src/emulation/CMakeFiles/bss_emulation.dir/driver.cc.o" "gcc" "src/emulation/CMakeFiles/bss_emulation.dir/driver.cc.o.d"
  "/root/repo/src/emulation/excess.cc" "src/emulation/CMakeFiles/bss_emulation.dir/excess.cc.o" "gcc" "src/emulation/CMakeFiles/bss_emulation.dir/excess.cc.o.d"
  "/root/repo/src/emulation/history_tree.cc" "src/emulation/CMakeFiles/bss_emulation.dir/history_tree.cc.o" "gcc" "src/emulation/CMakeFiles/bss_emulation.dir/history_tree.cc.o.d"
  "/root/repo/src/emulation/reduction_check.cc" "src/emulation/CMakeFiles/bss_emulation.dir/reduction_check.cc.o" "gcc" "src/emulation/CMakeFiles/bss_emulation.dir/reduction_check.cc.o.d"
  "/root/repo/src/emulation/stable_components.cc" "src/emulation/CMakeFiles/bss_emulation.dir/stable_components.cc.o" "gcc" "src/emulation/CMakeFiles/bss_emulation.dir/stable_components.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bss_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/registers/CMakeFiles/bss_registers.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
