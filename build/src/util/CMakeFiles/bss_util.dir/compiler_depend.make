# Empty compiler generated dependencies file for bss_util.
# This may be replaced when dependencies are built.
