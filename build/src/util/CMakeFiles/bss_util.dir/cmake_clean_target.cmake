file(REMOVE_RECURSE
  "libbss_util.a"
)
