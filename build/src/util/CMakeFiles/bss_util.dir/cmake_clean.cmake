file(REMOVE_RECURSE
  "CMakeFiles/bss_util.dir/big_uint.cc.o"
  "CMakeFiles/bss_util.dir/big_uint.cc.o.d"
  "CMakeFiles/bss_util.dir/factoradic.cc.o"
  "CMakeFiles/bss_util.dir/factoradic.cc.o.d"
  "CMakeFiles/bss_util.dir/permutation.cc.o"
  "CMakeFiles/bss_util.dir/permutation.cc.o.d"
  "libbss_util.a"
  "libbss_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bss_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
