# Empty compiler generated dependencies file for bss_game.
# This may be replaced when dependencies are built.
