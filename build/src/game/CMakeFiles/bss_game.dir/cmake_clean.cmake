file(REMOVE_RECURSE
  "CMakeFiles/bss_game.dir/exhaustive.cc.o"
  "CMakeFiles/bss_game.dir/exhaustive.cc.o.d"
  "CMakeFiles/bss_game.dir/game.cc.o"
  "CMakeFiles/bss_game.dir/game.cc.o.d"
  "CMakeFiles/bss_game.dir/potential.cc.o"
  "CMakeFiles/bss_game.dir/potential.cc.o.d"
  "CMakeFiles/bss_game.dir/strategy.cc.o"
  "CMakeFiles/bss_game.dir/strategy.cc.o.d"
  "libbss_game.a"
  "libbss_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bss_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
