file(REMOVE_RECURSE
  "libbss_game.a"
)
