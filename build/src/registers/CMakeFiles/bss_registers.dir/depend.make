# Empty dependencies file for bss_registers.
# This may be replaced when dependencies are built.
