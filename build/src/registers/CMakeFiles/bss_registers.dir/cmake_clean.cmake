file(REMOVE_RECURSE
  "CMakeFiles/bss_registers.dir/cas_register_k.cc.o"
  "CMakeFiles/bss_registers.dir/cas_register_k.cc.o.d"
  "CMakeFiles/bss_registers.dir/snapshot.cc.o"
  "CMakeFiles/bss_registers.dir/snapshot.cc.o.d"
  "libbss_registers.a"
  "libbss_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bss_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
