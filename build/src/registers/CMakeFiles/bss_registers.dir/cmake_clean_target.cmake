file(REMOVE_RECURSE
  "libbss_registers.a"
)
