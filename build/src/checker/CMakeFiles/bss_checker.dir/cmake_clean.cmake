file(REMOVE_RECURSE
  "CMakeFiles/bss_checker.dir/bivalence.cc.o"
  "CMakeFiles/bss_checker.dir/bivalence.cc.o.d"
  "CMakeFiles/bss_checker.dir/consensus_check.cc.o"
  "CMakeFiles/bss_checker.dir/consensus_check.cc.o.d"
  "CMakeFiles/bss_checker.dir/protocols.cc.o"
  "CMakeFiles/bss_checker.dir/protocols.cc.o.d"
  "libbss_checker.a"
  "libbss_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bss_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
