file(REMOVE_RECURSE
  "libbss_checker.a"
)
