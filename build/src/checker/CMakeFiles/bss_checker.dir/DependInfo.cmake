
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/bivalence.cc" "src/checker/CMakeFiles/bss_checker.dir/bivalence.cc.o" "gcc" "src/checker/CMakeFiles/bss_checker.dir/bivalence.cc.o.d"
  "/root/repo/src/checker/consensus_check.cc" "src/checker/CMakeFiles/bss_checker.dir/consensus_check.cc.o" "gcc" "src/checker/CMakeFiles/bss_checker.dir/consensus_check.cc.o.d"
  "/root/repo/src/checker/protocols.cc" "src/checker/CMakeFiles/bss_checker.dir/protocols.cc.o" "gcc" "src/checker/CMakeFiles/bss_checker.dir/protocols.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
