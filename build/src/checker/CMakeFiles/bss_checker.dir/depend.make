# Empty dependencies file for bss_checker.
# This may be replaced when dependencies are built.
