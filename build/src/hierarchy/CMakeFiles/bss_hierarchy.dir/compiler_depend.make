# Empty compiler generated dependencies file for bss_hierarchy.
# This may be replaced when dependencies are built.
