file(REMOVE_RECURSE
  "CMakeFiles/bss_hierarchy.dir/set_consensus.cc.o"
  "CMakeFiles/bss_hierarchy.dir/set_consensus.cc.o.d"
  "CMakeFiles/bss_hierarchy.dir/table.cc.o"
  "CMakeFiles/bss_hierarchy.dir/table.cc.o.d"
  "CMakeFiles/bss_hierarchy.dir/universal.cc.o"
  "CMakeFiles/bss_hierarchy.dir/universal.cc.o.d"
  "libbss_hierarchy.a"
  "libbss_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bss_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
