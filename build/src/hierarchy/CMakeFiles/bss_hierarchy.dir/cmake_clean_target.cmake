file(REMOVE_RECURSE
  "libbss_hierarchy.a"
)
