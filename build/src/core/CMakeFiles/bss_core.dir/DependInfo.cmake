
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capacity.cc" "src/core/CMakeFiles/bss_core.dir/capacity.cc.o" "gcc" "src/core/CMakeFiles/bss_core.dir/capacity.cc.o.d"
  "/root/repo/src/core/composed_election.cc" "src/core/CMakeFiles/bss_core.dir/composed_election.cc.o" "gcc" "src/core/CMakeFiles/bss_core.dir/composed_election.cc.o.d"
  "/root/repo/src/core/concurrent_election.cc" "src/core/CMakeFiles/bss_core.dir/concurrent_election.cc.o" "gcc" "src/core/CMakeFiles/bss_core.dir/concurrent_election.cc.o.d"
  "/root/repo/src/core/election_validator.cc" "src/core/CMakeFiles/bss_core.dir/election_validator.cc.o" "gcc" "src/core/CMakeFiles/bss_core.dir/election_validator.cc.o.d"
  "/root/repo/src/core/llsc_election.cc" "src/core/CMakeFiles/bss_core.dir/llsc_election.cc.o" "gcc" "src/core/CMakeFiles/bss_core.dir/llsc_election.cc.o.d"
  "/root/repo/src/core/one_shot_election.cc" "src/core/CMakeFiles/bss_core.dir/one_shot_election.cc.o" "gcc" "src/core/CMakeFiles/bss_core.dir/one_shot_election.cc.o.d"
  "/root/repo/src/core/path_math.cc" "src/core/CMakeFiles/bss_core.dir/path_math.cc.o" "gcc" "src/core/CMakeFiles/bss_core.dir/path_math.cc.o.d"
  "/root/repo/src/core/sim_election.cc" "src/core/CMakeFiles/bss_core.dir/sim_election.cc.o" "gcc" "src/core/CMakeFiles/bss_core.dir/sim_election.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/registers/CMakeFiles/bss_registers.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bss_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
