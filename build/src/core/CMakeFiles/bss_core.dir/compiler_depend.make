# Empty compiler generated dependencies file for bss_core.
# This may be replaced when dependencies are built.
