file(REMOVE_RECURSE
  "CMakeFiles/bss_core.dir/capacity.cc.o"
  "CMakeFiles/bss_core.dir/capacity.cc.o.d"
  "CMakeFiles/bss_core.dir/composed_election.cc.o"
  "CMakeFiles/bss_core.dir/composed_election.cc.o.d"
  "CMakeFiles/bss_core.dir/concurrent_election.cc.o"
  "CMakeFiles/bss_core.dir/concurrent_election.cc.o.d"
  "CMakeFiles/bss_core.dir/election_validator.cc.o"
  "CMakeFiles/bss_core.dir/election_validator.cc.o.d"
  "CMakeFiles/bss_core.dir/llsc_election.cc.o"
  "CMakeFiles/bss_core.dir/llsc_election.cc.o.d"
  "CMakeFiles/bss_core.dir/one_shot_election.cc.o"
  "CMakeFiles/bss_core.dir/one_shot_election.cc.o.d"
  "CMakeFiles/bss_core.dir/path_math.cc.o"
  "CMakeFiles/bss_core.dir/path_math.cc.o.d"
  "CMakeFiles/bss_core.dir/sim_election.cc.o"
  "CMakeFiles/bss_core.dir/sim_election.cc.o.d"
  "libbss_core.a"
  "libbss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
