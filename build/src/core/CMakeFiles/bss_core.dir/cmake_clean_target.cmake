file(REMOVE_RECURSE
  "libbss_core.a"
)
