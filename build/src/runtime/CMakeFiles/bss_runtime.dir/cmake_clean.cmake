file(REMOVE_RECURSE
  "CMakeFiles/bss_runtime.dir/crash_plan.cc.o"
  "CMakeFiles/bss_runtime.dir/crash_plan.cc.o.d"
  "CMakeFiles/bss_runtime.dir/linearizability.cc.o"
  "CMakeFiles/bss_runtime.dir/linearizability.cc.o.d"
  "CMakeFiles/bss_runtime.dir/scheduler.cc.o"
  "CMakeFiles/bss_runtime.dir/scheduler.cc.o.d"
  "CMakeFiles/bss_runtime.dir/sim_env.cc.o"
  "CMakeFiles/bss_runtime.dir/sim_env.cc.o.d"
  "CMakeFiles/bss_runtime.dir/trace.cc.o"
  "CMakeFiles/bss_runtime.dir/trace.cc.o.d"
  "libbss_runtime.a"
  "libbss_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bss_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
