file(REMOVE_RECURSE
  "libbss_runtime.a"
)
