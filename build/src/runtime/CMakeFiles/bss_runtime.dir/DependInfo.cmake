
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/crash_plan.cc" "src/runtime/CMakeFiles/bss_runtime.dir/crash_plan.cc.o" "gcc" "src/runtime/CMakeFiles/bss_runtime.dir/crash_plan.cc.o.d"
  "/root/repo/src/runtime/linearizability.cc" "src/runtime/CMakeFiles/bss_runtime.dir/linearizability.cc.o" "gcc" "src/runtime/CMakeFiles/bss_runtime.dir/linearizability.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/runtime/CMakeFiles/bss_runtime.dir/scheduler.cc.o" "gcc" "src/runtime/CMakeFiles/bss_runtime.dir/scheduler.cc.o.d"
  "/root/repo/src/runtime/sim_env.cc" "src/runtime/CMakeFiles/bss_runtime.dir/sim_env.cc.o" "gcc" "src/runtime/CMakeFiles/bss_runtime.dir/sim_env.cc.o.d"
  "/root/repo/src/runtime/trace.cc" "src/runtime/CMakeFiles/bss_runtime.dir/trace.cc.o" "gcc" "src/runtime/CMakeFiles/bss_runtime.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
