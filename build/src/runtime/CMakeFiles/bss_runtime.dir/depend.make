# Empty dependencies file for bss_runtime.
# This may be replaced when dependencies are built.
