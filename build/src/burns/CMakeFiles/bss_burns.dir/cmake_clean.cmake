file(REMOVE_RECURSE
  "CMakeFiles/bss_burns.dir/burns_election.cc.o"
  "CMakeFiles/bss_burns.dir/burns_election.cc.o.d"
  "libbss_burns.a"
  "libbss_burns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bss_burns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
