# Empty compiler generated dependencies file for bss_burns.
# This may be replaced when dependencies are built.
