
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/burns/burns_election.cc" "src/burns/CMakeFiles/bss_burns.dir/burns_election.cc.o" "gcc" "src/burns/CMakeFiles/bss_burns.dir/burns_election.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/registers/CMakeFiles/bss_registers.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bss_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/bss_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
