file(REMOVE_RECURSE
  "libbss_burns.a"
)
