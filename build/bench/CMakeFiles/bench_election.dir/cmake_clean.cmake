file(REMOVE_RECURSE
  "CMakeFiles/bench_election.dir/bench_election.cc.o"
  "CMakeFiles/bench_election.dir/bench_election.cc.o.d"
  "bench_election"
  "bench_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
