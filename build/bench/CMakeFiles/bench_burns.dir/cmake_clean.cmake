file(REMOVE_RECURSE
  "CMakeFiles/bench_burns.dir/bench_burns.cc.o"
  "CMakeFiles/bench_burns.dir/bench_burns.cc.o.d"
  "bench_burns"
  "bench_burns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_burns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
