# Empty compiler generated dependencies file for bench_burns.
# This may be replaced when dependencies are built.
